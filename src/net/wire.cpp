#include "net/wire.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

namespace bismo::net {
namespace {

// Plausibility caps applied by the reader: a corrupt length field must
// throw, never trigger a multi-gigabyte allocation.
constexpr std::size_t kMaxString = std::size_t{1} << 20;    // 1 MiB
constexpr std::size_t kMaxGridSide = std::size_t{1} << 14;  // 16384 px
constexpr std::size_t kMaxList = std::size_t{1} << 20;

template <typename Enum>
Enum decode_enum(WireReader& r, std::uint8_t max_value, const char* what) {
  const std::uint8_t raw = r.u8();
  if (raw > max_value) {
    throw WireError(std::string("wire: out-of-range ") + what + " value " +
                    std::to_string(raw));
  }
  return static_cast<Enum>(raw);
}

void encode_layout(WireWriter& w, const Layout& layout) {
  w.f64(layout.tile_nm());
  w.u32(static_cast<std::uint32_t>(layout.rects().size()));
  for (const Rect& rect : layout.rects()) {
    w.f64(rect.x0);
    w.f64(rect.y0);
    w.f64(rect.x1);
    w.f64(rect.y1);
  }
}

Layout decode_layout(WireReader& r) {
  const double tile_nm = r.f64();
  const std::uint32_t count = r.u32();
  if (count > kMaxList) throw WireError("wire: implausible rect count");
  Layout layout(tile_nm);
  for (std::uint32_t i = 0; i < count; ++i) {
    Rect rect;
    rect.x0 = r.f64();
    rect.y0 = r.f64();
    rect.x1 = r.f64();
    rect.y1 = r.f64();
    try {
      layout.add_rect(rect);
    } catch (const std::exception& e) {
      // Geometry the Layout itself rejects is corrupt wire data.
      throw WireError(std::string("wire: bad layout rect: ") + e.what());
    }
  }
  return layout;
}

void encode_clip(WireWriter& w, const api::ClipSource& clip) {
  w.u8(static_cast<std::uint8_t>(clip.kind));
  w.str(clip.layout_path);
  encode_layout(w, clip.layout);
  w.u8(static_cast<std::uint8_t>(clip.dataset));
  w.u64(clip.seed);
  w.grid(clip.grid);
}

api::ClipSource decode_clip(WireReader& r) {
  api::ClipSource clip;
  clip.kind = decode_enum<api::ClipSource::Kind>(
      r, static_cast<std::uint8_t>(api::ClipSource::Kind::kRawGrid),
      "ClipSource::Kind");
  clip.layout_path = r.str();
  clip.layout = decode_layout(r);
  clip.dataset = decode_enum<DatasetKind>(
      r, static_cast<std::uint8_t>(DatasetKind::kIspd19), "DatasetKind");
  clip.seed = r.u64();
  clip.grid = r.grid();
  return clip;
}

void encode_step(WireWriter& w, const StepRecord& step) {
  w.i32(step.step);
  w.f64(step.loss);
  w.f64(step.l2);
  w.f64(step.pvb);
  w.f64(step.seconds);
}

StepRecord decode_step(WireReader& r) {
  StepRecord step;
  step.step = r.i32();
  step.loss = r.f64();
  step.l2 = r.f64();
  step.pvb = r.f64();
  step.seconds = r.f64();
  return step;
}

void encode_metrics(WireWriter& w, const SolutionMetrics& m) {
  w.f64(m.l2_nm2);
  w.f64(m.pvb_nm2);
  w.u64(m.epe_violations);
  w.u64(m.epe_samples);
  w.f64(m.loss);
}

SolutionMetrics decode_metrics(WireReader& r) {
  SolutionMetrics m;
  m.l2_nm2 = r.f64();
  m.pvb_nm2 = r.f64();
  m.epe_violations = static_cast<std::size_t>(r.u64());
  m.epe_samples = static_cast<std::size_t>(r.u64());
  m.loss = r.f64();
  return m;
}

}  // namespace

void WireWriter::u16(std::uint16_t value) {
  buf_.push_back(static_cast<std::uint8_t>(value & 0xff));
  buf_.push_back(static_cast<std::uint8_t>(value >> 8));
}

void WireWriter::u32(std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>((value >> shift) & 0xff));
  }
}

void WireWriter::u64(std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>((value >> shift) & 0xff));
  }
}

void WireWriter::f64(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value), "IEEE-754 double expected");
  std::memcpy(&bits, &value, sizeof(bits));
  u64(bits);
}

void WireWriter::str(const std::string& value) {
  if (value.size() > kMaxString) {
    throw WireError("wire: string exceeds the 1 MiB wire cap");
  }
  u32(static_cast<std::uint32_t>(value.size()));
  buf_.insert(buf_.end(), value.begin(), value.end());
}

void WireWriter::grid(const RealGrid& value) {
  if (value.rows() > kMaxGridSide || value.cols() > kMaxGridSide) {
    throw WireError("wire: grid exceeds the wire side cap");
  }
  u32(static_cast<std::uint32_t>(value.rows()));
  u32(static_cast<std::uint32_t>(value.cols()));
  for (std::size_t i = 0; i < value.size(); ++i) f64(value.data()[i]);
}

const std::uint8_t* WireReader::need(std::size_t count) {
  if (count > size_ - pos_) {
    throw WireError("wire: truncated payload (need " + std::to_string(count) +
                    " bytes, have " + std::to_string(size_ - pos_) + ")");
  }
  const std::uint8_t* at = data_ + pos_;
  pos_ += count;
  return at;
}

std::uint8_t WireReader::u8() { return *need(1); }

std::uint16_t WireReader::u16() {
  const std::uint8_t* p = need(2);
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}

std::uint32_t WireReader::u32() {
  const std::uint8_t* p = need(4);
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) value |= std::uint32_t{p[i]} << (8 * i);
  return value;
}

std::uint64_t WireReader::u64() {
  const std::uint8_t* p = need(8);
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value |= std::uint64_t{p[i]} << (8 * i);
  return value;
}

double WireReader::f64() {
  const std::uint64_t bits = u64();
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::string WireReader::str() {
  const std::uint32_t size = u32();
  if (size > kMaxString) throw WireError("wire: implausible string length");
  const std::uint8_t* p = need(size);
  return std::string(reinterpret_cast<const char*>(p), size);
}

RealGrid WireReader::grid() {
  const std::uint32_t rows = u32();
  const std::uint32_t cols = u32();
  if (rows > kMaxGridSide || cols > kMaxGridSide) {
    throw WireError("wire: implausible grid dimensions");
  }
  if ((rows == 0) != (cols == 0)) {
    throw WireError("wire: degenerate grid shape");
  }
  if (rows == 0) return RealGrid();
  RealGrid value(rows, cols);
  for (std::size_t i = 0; i < value.size(); ++i) value.data()[i] = f64();
  return value;
}

void WireReader::expect_end() const {
  if (!at_end()) {
    throw WireError("wire: " + std::to_string(remaining()) +
                    " trailing bytes after payload");
  }
}

void encode_config(WireWriter& w, const SmoConfig& c) {
  w.f64(c.optics.wavelength_nm);
  w.f64(c.optics.na);
  w.u64(c.optics.mask_dim);
  w.f64(c.optics.pixel_nm);
  w.f64(c.optics.defocus_nm);
  w.u64(c.source_dim);
  w.u8(static_cast<std::uint8_t>(c.initial_source.shape));
  w.f64(c.initial_source.sigma_out);
  w.f64(c.initial_source.sigma_in);
  w.f64(c.initial_source.opening_deg);
  w.f64(c.activation.alpha_mask);
  w.f64(c.activation.mask_init);
  w.f64(c.activation.alpha_source);
  w.f64(c.activation.source_init);
  w.u8(static_cast<std::uint8_t>(c.activation.kind));
  w.f64(c.resist.beta);
  w.f64(c.resist.threshold);
  w.f64(c.weights.gamma);
  w.f64(c.weights.eta);
  w.f64(c.process_window.dose_min);
  w.f64(c.process_window.dose_max);
  w.f64(c.epe.sample_spacing_nm);
  w.f64(c.epe.threshold_nm);
  w.f64(c.epe.search_range_nm);
  w.u8(static_cast<std::uint8_t>(c.optimizer));
  w.f64(c.lr_mask);
  w.f64(c.lr_source);
  w.i32(c.unroll_steps);
  w.i32(c.hyper_terms);
  w.f64(c.cg_damping);
  w.f64(c.fd_eps_scale);
  w.i32(c.outer_steps);
  w.i32(c.am_cycles);
  w.i32(c.am_so_steps);
  w.i32(c.am_mo_steps);
  w.u64(c.socs_kernels);
  w.f64(c.source_cutoff);
}

SmoConfig decode_config(WireReader& r) {
  SmoConfig c;
  c.optics.wavelength_nm = r.f64();
  c.optics.na = r.f64();
  c.optics.mask_dim = static_cast<std::size_t>(r.u64());
  c.optics.pixel_nm = r.f64();
  c.optics.defocus_nm = r.f64();
  c.source_dim = static_cast<std::size_t>(r.u64());
  c.initial_source.shape = decode_enum<SourceShape>(
      r, static_cast<std::uint8_t>(SourceShape::kPoint), "SourceShape");
  c.initial_source.sigma_out = r.f64();
  c.initial_source.sigma_in = r.f64();
  c.initial_source.opening_deg = r.f64();
  c.activation.alpha_mask = r.f64();
  c.activation.mask_init = r.f64();
  c.activation.alpha_source = r.f64();
  c.activation.source_init = r.f64();
  c.activation.kind = decode_enum<ActivationKind>(
      r, static_cast<std::uint8_t>(ActivationKind::kCosine),
      "ActivationKind");
  c.resist.beta = r.f64();
  c.resist.threshold = r.f64();
  c.weights.gamma = r.f64();
  c.weights.eta = r.f64();
  c.process_window.dose_min = r.f64();
  c.process_window.dose_max = r.f64();
  c.epe.sample_spacing_nm = r.f64();
  c.epe.threshold_nm = r.f64();
  c.epe.search_range_nm = r.f64();
  c.optimizer = decode_enum<OptimizerKind>(
      r, static_cast<std::uint8_t>(OptimizerKind::kAdam), "OptimizerKind");
  c.lr_mask = r.f64();
  c.lr_source = r.f64();
  c.unroll_steps = r.i32();
  c.hyper_terms = r.i32();
  c.cg_damping = r.f64();
  c.fd_eps_scale = r.f64();
  c.outer_steps = r.i32();
  c.am_cycles = r.i32();
  c.am_so_steps = r.i32();
  c.am_mo_steps = r.i32();
  c.socs_kernels = static_cast<std::size_t>(r.u64());
  c.source_cutoff = r.f64();
  return c;
}

void encode_job_spec(WireWriter& w, const api::JobSpec& spec) {
  w.str(spec.name);
  encode_clip(w, spec.clip);
  w.u8(static_cast<std::uint8_t>(spec.method));
  encode_config(w, spec.config);
  if (spec.config_overrides.size() > kMaxList) {
    throw WireError("wire: implausible override count");
  }
  w.u32(static_cast<std::uint32_t>(spec.config_overrides.size()));
  for (const std::string& pair : spec.config_overrides) w.str(pair);
  w.boolean(spec.evaluate_solution);
}

api::JobSpec decode_job_spec(WireReader& r) {
  api::JobSpec spec;
  spec.name = r.str();
  spec.clip = decode_clip(r);
  spec.method = decode_enum<Method>(
      r, static_cast<std::uint8_t>(Method::kBismoNmn), "Method");
  spec.config = decode_config(r);
  const std::uint32_t overrides = r.u32();
  if (overrides > kMaxList) throw WireError("wire: implausible override count");
  spec.config_overrides.reserve(overrides);
  for (std::uint32_t i = 0; i < overrides; ++i) {
    spec.config_overrides.push_back(r.str());
  }
  spec.evaluate_solution = r.boolean();
  return spec;
}

void encode_job_result(WireWriter& w, const api::JobResult& result) {
  w.str(result.job_name);
  w.str(result.method);
  w.str(result.clip);
  w.str(result.run.method);
  w.grid(result.run.theta_m);
  w.grid(result.run.theta_j);
  if (result.run.trace.size() > kMaxList) {
    throw WireError("wire: implausible trace length");
  }
  w.u32(static_cast<std::uint32_t>(result.run.trace.size()));
  for (const StepRecord& step : result.run.trace) encode_step(w, step);
  w.f64(result.run.wall_seconds);
  w.i64(result.run.gradient_evaluations);
  w.boolean(result.run.cancelled);
  encode_metrics(w, result.before);
  encode_metrics(w, result.after);
  w.f64(result.setup_seconds);
  w.f64(result.total_seconds);
  w.f64(result.queued_ms);
  w.f64(result.run_ms);
  w.boolean(result.workspaces_reused);
  w.u64(result.workspace_evictions);
  w.u64(result.queue_depth);
  w.boolean(result.shed);
  w.u64(result.retries);
  w.str(result.fft_backend);
  w.str(result.fusion);
  w.str(result.error);
}

api::JobResult decode_job_result(WireReader& r) {
  api::JobResult result;
  result.job_name = r.str();
  result.method = r.str();
  result.clip = r.str();
  result.run.method = r.str();
  result.run.theta_m = r.grid();
  result.run.theta_j = r.grid();
  const std::uint32_t steps = r.u32();
  if (steps > kMaxList) throw WireError("wire: implausible trace length");
  result.run.trace.reserve(steps);
  for (std::uint32_t i = 0; i < steps; ++i) {
    result.run.trace.push_back(decode_step(r));
  }
  result.run.wall_seconds = r.f64();
  result.run.gradient_evaluations = static_cast<long>(r.i64());
  result.run.cancelled = r.boolean();
  result.before = decode_metrics(r);
  result.after = decode_metrics(r);
  result.setup_seconds = r.f64();
  result.total_seconds = r.f64();
  result.queued_ms = r.f64();
  result.run_ms = r.f64();
  result.workspaces_reused = r.boolean();
  result.workspace_evictions = static_cast<std::size_t>(r.u64());
  result.queue_depth = static_cast<std::size_t>(r.u64());
  result.shed = r.boolean();
  result.retries = static_cast<std::size_t>(r.u64());
  result.fft_backend = r.str();
  result.fusion = r.str();
  result.error = r.str();
  return result;
}

void encode_job_event(WireWriter& w, const api::JobEvent& event) {
  w.u8(static_cast<std::uint8_t>(event.kind));
  w.u64(event.job_id);
  w.str(event.job_name);
  w.str(event.method);
  w.u8(static_cast<std::uint8_t>(event.status));
  w.u64(event.batch_index);
  w.u64(event.batch_count);
  encode_step(w, event.step);
  w.i32(event.planned_steps);
  w.f64(event.queued_ms);
  w.f64(event.run_ms);
}

api::JobEvent decode_job_event(WireReader& r) {
  api::JobEvent event;
  event.kind = decode_enum<api::JobEvent::Kind>(
      r, static_cast<std::uint8_t>(api::JobEvent::Kind::kFinished),
      "JobEvent::Kind");
  event.job_id = r.u64();
  event.job_name = r.str();
  event.method = r.str();
  event.status = decode_enum<api::JobStatus>(
      r, static_cast<std::uint8_t>(api::JobStatus::kCancelled), "JobStatus");
  event.batch_index = static_cast<std::size_t>(r.u64());
  event.batch_count = static_cast<std::size_t>(r.u64());
  event.step = decode_step(r);
  event.planned_steps = r.i32();
  event.queued_ms = r.f64();
  event.run_ms = r.f64();
  return event;
}

void encode_stats(WireWriter& w, const api::Session::Stats& stats) {
  w.u64(stats.jobs_submitted);
  w.u64(stats.jobs_run);
  w.u64(stats.jobs_cancelled);
  w.u64(stats.workspace_reuses);
  w.u64(stats.workspace_evictions);
  w.u64(stats.lane_pool_reuses);
  w.u64(stats.queue_depth);
  w.u64(stats.jobs_executing);
  w.u64(stats.steals);
  w.u64(stats.coalesced_jobs);
  w.u64(stats.jobs_shed);
  w.u64(stats.jobs_rejected);
  w.f64(stats.queue_p95_ms);
  w.u64(stats.slo_sheds);
}

api::Session::Stats decode_stats(WireReader& r) {
  api::Session::Stats stats;
  stats.jobs_submitted = static_cast<std::size_t>(r.u64());
  stats.jobs_run = static_cast<std::size_t>(r.u64());
  stats.jobs_cancelled = static_cast<std::size_t>(r.u64());
  stats.workspace_reuses = static_cast<std::size_t>(r.u64());
  stats.workspace_evictions = static_cast<std::size_t>(r.u64());
  stats.lane_pool_reuses = static_cast<std::size_t>(r.u64());
  stats.queue_depth = static_cast<std::size_t>(r.u64());
  stats.jobs_executing = static_cast<std::size_t>(r.u64());
  stats.steals = static_cast<std::size_t>(r.u64());
  stats.coalesced_jobs = static_cast<std::size_t>(r.u64());
  stats.jobs_shed = static_cast<std::size_t>(r.u64());
  stats.jobs_rejected = static_cast<std::size_t>(r.u64());
  stats.queue_p95_ms = r.f64();
  stats.slo_sheds = static_cast<std::size_t>(r.u64());
  return stats;
}

bool wire_self_check(std::string* error) {
  const auto fail = [error](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  try {
    // A spec exercising every clip payload field plus overrides.
    api::JobSpec spec;
    spec.name = "self-check";
    spec.clip = api::ClipSource::generated(DatasetKind::kIccadL, 7);
    spec.method = Method::kBismoCg;
    spec.config.optics.mask_dim = 48;
    spec.config.outer_steps = 2;
    spec.config_overrides = {"lr_mask=0.05", "source_dim=9"};
    spec.evaluate_solution = false;

    WireWriter spec_bytes;
    encode_job_spec(spec_bytes, spec);
    WireReader spec_reader(spec_bytes.bytes());
    const api::JobSpec spec2 = decode_job_spec(spec_reader);
    spec_reader.expect_end();
    WireWriter spec_bytes2;
    encode_job_spec(spec_bytes2, spec2);
    if (spec_bytes.bytes() != spec_bytes2.bytes()) {
      return fail("JobSpec re-encoding differs");
    }
    if (spec2.coalesce_fingerprint() != spec.coalesce_fingerprint()) {
      return fail("JobSpec fingerprint changed across the wire");
    }

    // A result with grids, a trace, and non-finite metric fields.
    api::JobResult result;
    result.job_name = spec.name;
    result.method = "BiSMO-CG";
    result.run.theta_m = RealGrid(4, 4, 0.25);
    result.run.theta_j = RealGrid(3, 3, -1.5);
    result.run.trace = {StepRecord{0, 10.0, 5.0, 5.0, 0.1},
                        StepRecord{1, 8.0, 4.0, 4.0, 0.2}};
    result.before.loss = std::numeric_limits<double>::infinity();
    result.after.l2_nm2 = std::numeric_limits<double>::quiet_NaN();
    result.retries = 2;
    result.fft_backend = "scalar";
    result.fusion = "fused";

    WireWriter result_bytes;
    encode_job_result(result_bytes, result);
    WireReader result_reader(result_bytes.bytes());
    const api::JobResult result2 = decode_job_result(result_reader);
    result_reader.expect_end();
    WireWriter result_bytes2;
    encode_job_result(result_bytes2, result2);
    if (result_bytes.bytes() != result_bytes2.bytes()) {
      return fail("JobResult re-encoding differs");
    }
    if (!(result2.run.theta_m == result.run.theta_m) ||
        !std::isnan(result2.after.l2_nm2)) {
      return fail("JobResult payload changed across the wire");
    }

    api::JobEvent event;
    event.kind = api::JobEvent::Kind::kStep;
    event.job_id = 42;
    event.job_name = spec.name;
    event.status = api::JobStatus::kRunning;
    event.step = StepRecord{3, 7.5, 3.0, 4.5, 0.3};
    WireWriter event_bytes;
    encode_job_event(event_bytes, event);
    WireReader event_reader(event_bytes.bytes());
    const api::JobEvent event2 = decode_job_event(event_reader);
    event_reader.expect_end();
    WireWriter event_bytes2;
    encode_job_event(event_bytes2, event2);
    if (event_bytes.bytes() != event_bytes2.bytes()) {
      return fail("JobEvent re-encoding differs");
    }

    api::Session::Stats stats;
    stats.jobs_submitted = 11;
    stats.coalesced_jobs = 3;
    WireWriter stats_bytes;
    encode_stats(stats_bytes, stats);
    WireReader stats_reader(stats_bytes.bytes());
    const api::Session::Stats stats2 = decode_stats(stats_reader);
    stats_reader.expect_end();
    if (stats2.jobs_submitted != 11 || stats2.coalesced_jobs != 3) {
      return fail("Stats payload changed across the wire");
    }
  } catch (const std::exception& e) {
    return fail(std::string("self-check raised: ") + e.what());
  }
  if (error != nullptr) error->clear();
  return true;
}

}  // namespace bismo::net
