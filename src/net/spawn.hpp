// Local worker process spawning (fork-based) for `--spawn-workers N`,
// bench_cluster, and the fault-injection tests.
//
// Each worker is a fork of the current process that constructs a
// net::Worker on an ephemeral port, writes the chosen port back through a
// pipe, and serves until killed.  Children arm PR_SET_PDEATHSIG(SIGKILL)
// so a crashed parent never leaks worker processes.  Fork MUST happen
// before the parent creates threads or a Session; callers (CLI, bench)
// spawn first and construct their Session/Dispatcher afterwards.
#ifndef BISMO_NET_SPAWN_HPP
#define BISMO_NET_SPAWN_HPP

#include <cstddef>
#include <sys/types.h>
#include <vector>

#include "net/dispatcher.hpp"
#include "net/worker.hpp"

namespace bismo::net {

/// A set of forked local worker processes.  Destroying the cluster kills
/// and reaps every still-live worker.
class SpawnedCluster {
 public:
  SpawnedCluster() = default;
  ~SpawnedCluster();

  SpawnedCluster(const SpawnedCluster&) = delete;
  SpawnedCluster& operator=(const SpawnedCluster&) = delete;
  SpawnedCluster(SpawnedCluster&& other) noexcept;
  SpawnedCluster& operator=(SpawnedCluster&& other) noexcept;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Loopback endpoints of the spawned workers (dispatcher input).
  const std::vector<Endpoint>& endpoints() const noexcept {
    return endpoints_;
  }

  /// SIGKILL worker `index` (fault injection); no-op if already dead.
  void kill_worker(std::size_t index);

  /// True while worker `index` has not been killed/reaped.
  bool alive(std::size_t index) const;

 private:
  friend SpawnedCluster spawn_local_workers(std::size_t count,
                                            const WorkerOptions& base);

  std::vector<pid_t> workers_;
  std::vector<Endpoint> endpoints_;
};

/// Fork `count` local worker processes ("<base.name>-<i>", ephemeral
/// ports).  Throws WireError when a worker fails to start.  Call before
/// creating threads in the calling process.
SpawnedCluster spawn_local_workers(std::size_t count,
                                   const WorkerOptions& base = {});

}  // namespace bismo::net

#endif  // BISMO_NET_SPAWN_HPP
