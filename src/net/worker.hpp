// net::Worker -- one process's api::Session served over TCP.
//
// A Worker binds a loopback listener and serves its local Session to any
// number of client connections.  Per connection, a reader thread decodes
// frames (kSubmit -> Session::submit with a per-job observer that relays
// kStarted/kStep events back as kEvent frames; kCancel -> JobHandle
// cancel) and a reporter thread ships terminal results as kResult frames
// in completion order, interleaved with kHeartbeat frames carrying live
// Session::stats() gauges whenever the connection has been quiet for one
// heartbeat interval.  Job identity on the wire is the CLIENT's job id
// (see protocol.hpp).
//
// Failure semantics: when a connection dies (EOF, corrupt frame, write
// error), every job it still has open is cancelled on the local session
// -- the dispatcher owns retry, and a half-run job's work is discarded so
// the retried run's results stay bitwise identical to a clean run.
// `kill()` hard-closes the listener and every live connection without a
// goodbye: the process-local fault-injection hook (tests) matching what a
// SIGKILL'd worker process looks like to its clients.
#ifndef BISMO_NET_WORKER_HPP
#define BISMO_NET_WORKER_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/session.hpp"
#include "net/socket.hpp"

namespace bismo::net {

struct WorkerOptions {
  std::uint16_t port = 0;     ///< 0 = ephemeral (read back via port())
  std::size_t threads = 1;    ///< session width: cluster workers default
                              ///< narrow so co-located workers scale by
                              ///< process count, not thread oversubscription
  std::size_t lanes = 0;      ///< scheduler lanes (0 = threads)
  std::size_t queue_capacity = 0;
  std::size_t coalesce_limit = 8;
  double heartbeat_seconds = 0.2;  ///< max quiet time between frames
  std::string name = "worker";
  bool verbose = false;  ///< connection lifecycle logging to stderr
};

class Worker {
 public:
  /// Binds and listens immediately (throws WireError on bind failure);
  /// serving starts with serve()/start().
  explicit Worker(WorkerOptions options);

  /// stop()s and joins everything.
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// The bound port (the chosen one when options.port was 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Blocking accept loop; returns after stop()/kill().
  void serve();

  /// serve() on a background thread.
  void start();

  /// Orderly shutdown: goodbye frames, close everything, join threads.
  void stop();

  /// Fault injection: hard-close the listener and every connection with
  /// no goodbye, as a killed process would.  The local session keeps
  /// running (its in-flight jobs are cancelled); the object stays
  /// destructible.
  void kill();

  /// The served session (tests inspect stats()).
  api::Session& session() noexcept { return *session_; }

  /// Results successfully shipped to clients.
  std::size_t jobs_served() const noexcept {
    return jobs_served_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    Socket socket;
    std::mutex write_mutex;  ///< one frame at a time on the socket
    std::mutex mutex;        ///< guards handles / completed / closing
    std::condition_variable cv;
    std::unordered_map<std::uint64_t, api::JobHandle> handles;
    std::deque<std::uint64_t> completed;  ///< finished ids awaiting report
    bool closing = false;
    std::thread reader;
    std::thread reporter;
  };

  static api::Session::Options session_options(const WorkerOptions& options);

  void reader_main(const std::shared_ptr<Connection>& conn);
  void reporter_main(const std::shared_ptr<Connection>& conn);
  void handle_submit(const std::shared_ptr<Connection>& conn,
                     const std::vector<std::uint8_t>& payload);
  /// Mark closing, cancel every open job of the connection, wake the
  /// reporter.  Idempotent.
  void teardown(const std::shared_ptr<Connection>& conn);
  void close_all(bool orderly);

  WorkerOptions options_;
  std::unique_ptr<api::Session> session_;
  Socket listener_;
  std::uint16_t port_ = 0;

  std::mutex conns_mutex_;
  std::vector<std::shared_ptr<Connection>> conns_;
  bool stopping_ = false;

  std::thread accept_thread_;
  std::atomic<std::size_t> jobs_served_{0};
};

}  // namespace bismo::net

#endif  // BISMO_NET_WORKER_HPP
