#include "net/spawn.hpp"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <utility>

#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "net/wire.hpp"

namespace bismo::net {
namespace {

void reap(pid_t pid) {
  if (pid <= 0) return;
  ::kill(pid, SIGKILL);
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
}

ssize_t read_retry(int fd, void* buf, std::size_t size) {
  for (;;) {
    const ssize_t n = ::read(fd, buf, size);
    if (n >= 0 || errno != EINTR) return n;
  }
}

}  // namespace

SpawnedCluster::~SpawnedCluster() {
  for (pid_t pid : workers_) reap(pid);
}

SpawnedCluster::SpawnedCluster(SpawnedCluster&& other) noexcept
    : workers_(std::move(other.workers_)),
      endpoints_(std::move(other.endpoints_)) {
  other.workers_.clear();
}

SpawnedCluster& SpawnedCluster::operator=(SpawnedCluster&& other) noexcept {
  if (this != &other) {
    for (pid_t pid : workers_) reap(pid);
    workers_ = std::move(other.workers_);
    endpoints_ = std::move(other.endpoints_);
    other.workers_.clear();
  }
  return *this;
}

void SpawnedCluster::kill_worker(std::size_t index) {
  if (index >= workers_.size()) return;
  reap(workers_[index]);
  workers_[index] = -1;
}

bool SpawnedCluster::alive(std::size_t index) const {
  return index < workers_.size() && workers_[index] > 0;
}

SpawnedCluster spawn_local_workers(std::size_t count,
                                   const WorkerOptions& base) {
  SpawnedCluster cluster;
  for (std::size_t i = 0; i < count; ++i) {
    int pipefd[2];
    if (::pipe(pipefd) != 0) {
      throw WireError(std::string("net: pipe() failed: ") +
                      std::strerror(errno));
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(pipefd[0]);
      ::close(pipefd[1]);
      throw WireError(std::string("net: fork() failed: ") +
                      std::strerror(errno));
    }
    if (pid == 0) {
      // Child: serve one Worker until killed.  Never returns.
      ::close(pipefd[0]);
      ::prctl(PR_SET_PDEATHSIG, SIGKILL);  // die with the parent
      WorkerOptions options = base;
      options.port = 0;
      options.name = base.name + "-" + std::to_string(i);
      int exit_code = 0;
      try {
        Worker worker(options);
        const std::uint16_t port = worker.port();
        if (::write(pipefd[1], &port, sizeof(port)) != sizeof(port)) {
          std::_Exit(3);
        }
        ::close(pipefd[1]);
        worker.serve();
      } catch (const std::exception&) {
        exit_code = 2;
      }
      std::_Exit(exit_code);
    }
    // Parent: learn the child's port.
    ::close(pipefd[1]);
    std::uint16_t port = 0;
    const ssize_t n = read_retry(pipefd[0], &port, sizeof(port));
    ::close(pipefd[0]);
    if (n != static_cast<ssize_t>(sizeof(port)) || port == 0) {
      reap(pid);
      throw WireError("net: spawned worker " + std::to_string(i) +
                      " failed to start");
    }
    cluster.workers_.push_back(pid);
    cluster.endpoints_.push_back(Endpoint{"127.0.0.1", port});
  }
  return cluster;
}

}  // namespace bismo::net
