// Typed payloads of the worker protocol frames (frame.hpp carries them).
//
// Job identity on the wire is the DISPATCHER's job id: the worker runs
// each remote job under its own local Session id but reports events and
// results keyed by the id the client submitted, so the dispatcher never
// needs an id translation table.
#ifndef BISMO_NET_PROTOCOL_HPP
#define BISMO_NET_PROTOCOL_HPP

#include <cstdint>
#include <string>

#include "net/wire.hpp"

namespace bismo::net {

/// Worker -> client greeting, sent once per connection before anything
/// else.  The dispatcher rejects mismatched versions and failed
/// self-checks instead of exchanging undecodable frames later.
struct HelloMsg {
  std::uint16_t version = kProtocolVersion;
  std::string name;         ///< WorkerOptions::name
  std::uint64_t width = 1;  ///< the worker session's parallel width
  std::string fft_backend;  ///< fft::backend_name() of the worker process
  std::string fusion;       ///< sim::fusion_mode_name() of the worker
  bool self_check_ok = false;  ///< wire_self_check() result at startup
};

/// Client -> worker job submission.
struct SubmitMsg {
  std::uint64_t job_id = 0;  ///< dispatcher job id (echoed in events/results)
  api::JobSpec spec;
  std::int32_t priority = 0;
  std::uint64_t coalesce_key = 0;
  std::uint64_t lanes_hint = 0;
  std::uint64_t batch_index = 0;
  std::uint64_t batch_count = 1;
};

/// Worker -> client event relay (kStarted / kStep; terminal state rides
/// the ResultMsg).
struct EventMsg {
  std::uint64_t job_id = 0;
  api::JobEvent event;
};

/// Worker -> client terminal result.
struct ResultMsg {
  std::uint64_t job_id = 0;
  api::JobResult result;
};

/// Worker -> client liveness beacon with live serving gauges.
struct HeartbeatMsg {
  api::Session::Stats stats;
  std::uint64_t jobs_in_flight = 0;  ///< remote jobs open on this connection
};

/// Client -> worker per-job cancel.
struct CancelMsg {
  std::uint64_t job_id = 0;
};

void encode_hello(WireWriter& w, const HelloMsg& msg);
HelloMsg decode_hello(WireReader& r);

void encode_submit(WireWriter& w, const SubmitMsg& msg);
SubmitMsg decode_submit(WireReader& r);

void encode_event_msg(WireWriter& w, const EventMsg& msg);
EventMsg decode_event_msg(WireReader& r);

void encode_result_msg(WireWriter& w, const ResultMsg& msg);
ResultMsg decode_result_msg(WireReader& r);

void encode_heartbeat(WireWriter& w, const HeartbeatMsg& msg);
HeartbeatMsg decode_heartbeat(WireReader& r);

void encode_cancel(WireWriter& w, const CancelMsg& msg);
CancelMsg decode_cancel(WireReader& r);

}  // namespace bismo::net

#endif  // BISMO_NET_PROTOCOL_HPP
