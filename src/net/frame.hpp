// Length-prefixed message framing for the worker protocol.
//
// Every message on a worker connection is one frame:
//
//   u32 magic     "BSMO" (0x4f4d5342 little-endian)
//   u16 version   kProtocolVersion -- mismatches are rejected at decode
//   u8  type      MsgType
//   u8  reserved  0
//   u32 length    payload bytes that follow the header
//   u64 checksum  FNV-1a over the payload
//   ...payload    wire.hpp encoding of the message body
//
// The decoder distinguishes "need more bytes" (a partial frame on a live
// stream) from corruption (bad magic/version/type, an implausible length,
// or a checksum mismatch), which always throws WireError; a stream that
// ends inside a frame is reported as truncation by the fd readers.
// `describe_frame` renders a header as a JSON object via io::JsonWriter
// for logs and debugging -- the human-facing side of the protocol stays
// on the repo's JSON emitters.
#ifndef BISMO_NET_FRAME_HPP
#define BISMO_NET_FRAME_HPP

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <vector>

#include "net/wire.hpp"

namespace bismo::net {

/// Message types of the worker protocol.
enum class MsgType : std::uint8_t {
  kHello = 1,      ///< worker -> client: version, name, width, backend
  kSubmit = 2,     ///< client -> worker: job id + JobSpec + submit options
  kEvent = 3,      ///< worker -> client: job id + JobEvent
  kResult = 4,     ///< worker -> client: job id + JobResult (terminal)
  kHeartbeat = 5,  ///< worker -> client: live Session::stats() gauges
  kCancel = 6,     ///< client -> worker: job id
  kGoodbye = 7,    ///< either side: orderly shutdown
};

constexpr std::uint32_t kFrameMagic = 0x4f4d5342;  // "BSMO"
constexpr std::size_t kFrameHeaderSize = 20;
/// Payload cap; a mask grid at the wire side cap is well under this.
constexpr std::uint32_t kMaxFramePayload = 1u << 30;

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::kHello;
  std::vector<std::uint8_t> payload;
};

/// FNV-1a over a byte span (the frame checksum).
std::uint64_t frame_checksum(const std::uint8_t* data, std::size_t size);

/// Serialize one frame (header + payload).
std::vector<std::uint8_t> encode_frame(MsgType type,
                                       const std::vector<std::uint8_t>& payload);

/// Streaming decode: kNeedMore when `size` bytes are a valid prefix of a
/// frame, kFrame when a whole frame was parsed (`*consumed` bytes).
/// Throws WireError on corruption.
enum class ParseStatus { kNeedMore, kFrame };
ParseStatus parse_frame(const std::uint8_t* data, std::size_t size,
                        Frame* out, std::size_t* consumed);

/// Decode exactly one frame from `bytes`; throws WireError when the buffer
/// is incomplete, corrupt, or has trailing bytes (closed-stream semantics;
/// this is what the corrupt-frame tests drive).
Frame decode_frame_exact(const std::vector<std::uint8_t>& bytes);

/// Blocking fd reader: false on a clean EOF at a frame boundary; throws
/// WireError on mid-frame EOF, corruption, or a socket error.
bool read_frame(int fd, Frame* out);

/// Blocking fd writer (handles partial writes; throws WireError on error).
void write_frame(int fd, MsgType type,
                 const std::vector<std::uint8_t>& payload);

/// Render a frame header as a JSON object (io::JsonWriter) for logging.
void describe_frame(std::ostream& out, const Frame& frame);

/// Short label for a message type ("hello", "submit", ...).
const char* to_string(MsgType type) noexcept;

}  // namespace bismo::net

#endif  // BISMO_NET_FRAME_HPP
