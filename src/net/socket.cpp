#include "net/socket.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "net/wire.hpp"

namespace bismo::net {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw WireError("net: " + what + ": " + std::strerror(errno));
}

void enable_nodelay(int fd) {
  // Frames are small and latency-sensitive (submits, events, heartbeats);
  // Nagle would add 40 ms stalls to the event stream.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Socket listen_loopback(std::uint16_t* port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket() failed");
  Socket sock(fd);

  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(*port);
  // bismo-lint: allow(wire-discipline) POSIX sockaddr interface cast, not frame-buffer punning
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    fail("bind(127.0.0.1:" + std::to_string(*port) + ") failed");
  }
  if (::listen(fd, 64) < 0) fail("listen() failed");

  socklen_t len = sizeof(addr);
  // bismo-lint: allow(wire-discipline) POSIX sockaddr interface cast, not frame-buffer punning
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    fail("getsockname() failed");
  }
  *port = ntohs(addr.sin_port);
  return sock;
}

Socket accept_connection(const Socket& listener) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      enable_nodelay(fd);
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    // EBADF/EINVAL: the listener was closed or shut down -- orderly stop.
    if (errno == EBADF || errno == EINVAL || errno == ECONNABORTED) {
      return Socket();
    }
    fail("accept() failed");
  }
}

Socket connect_to(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* info = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &info);
  if (rc != 0 || info == nullptr) {
    throw WireError("net: cannot resolve " + host + ": " +
                    ::gai_strerror(rc));
  }
  int saved_errno = 0;
  for (addrinfo* ai = info; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      saved_errno = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(info);
      enable_nodelay(fd);
      return Socket(fd);
    }
    saved_errno = errno;
    ::close(fd);
  }
  ::freeaddrinfo(info);
  throw WireError("net: cannot connect to " + host + ":" +
                  std::to_string(port) + ": " + std::strerror(saved_errno));
}

void set_recv_timeout(const Socket& socket, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace bismo::net
