#include "net/protocol.hpp"

namespace bismo::net {

void encode_hello(WireWriter& w, const HelloMsg& msg) {
  w.u16(msg.version);
  w.str(msg.name);
  w.u64(msg.width);
  w.str(msg.fft_backend);
  w.str(msg.fusion);
  w.boolean(msg.self_check_ok);
}

HelloMsg decode_hello(WireReader& r) {
  HelloMsg msg;
  msg.version = r.u16();
  msg.name = r.str();
  msg.width = r.u64();
  msg.fft_backend = r.str();
  msg.fusion = r.str();
  msg.self_check_ok = r.boolean();
  r.expect_end();
  return msg;
}

void encode_submit(WireWriter& w, const SubmitMsg& msg) {
  w.u64(msg.job_id);
  encode_job_spec(w, msg.spec);
  w.i32(msg.priority);
  w.u64(msg.coalesce_key);
  w.u64(msg.lanes_hint);
  w.u64(msg.batch_index);
  w.u64(msg.batch_count);
}

SubmitMsg decode_submit(WireReader& r) {
  SubmitMsg msg;
  msg.job_id = r.u64();
  msg.spec = decode_job_spec(r);
  msg.priority = r.i32();
  msg.coalesce_key = r.u64();
  msg.lanes_hint = r.u64();
  msg.batch_index = r.u64();
  msg.batch_count = r.u64();
  r.expect_end();
  return msg;
}

void encode_event_msg(WireWriter& w, const EventMsg& msg) {
  w.u64(msg.job_id);
  encode_job_event(w, msg.event);
}

EventMsg decode_event_msg(WireReader& r) {
  EventMsg msg;
  msg.job_id = r.u64();
  msg.event = decode_job_event(r);
  r.expect_end();
  return msg;
}

void encode_result_msg(WireWriter& w, const ResultMsg& msg) {
  w.u64(msg.job_id);
  encode_job_result(w, msg.result);
}

ResultMsg decode_result_msg(WireReader& r) {
  ResultMsg msg;
  msg.job_id = r.u64();
  msg.result = decode_job_result(r);
  r.expect_end();
  return msg;
}

void encode_heartbeat(WireWriter& w, const HeartbeatMsg& msg) {
  encode_stats(w, msg.stats);
  w.u64(msg.jobs_in_flight);
}

HeartbeatMsg decode_heartbeat(WireReader& r) {
  HeartbeatMsg msg;
  msg.stats = decode_stats(r);
  msg.jobs_in_flight = r.u64();
  r.expect_end();
  return msg;
}

void encode_cancel(WireWriter& w, const CancelMsg& msg) {
  w.u64(msg.job_id);
}

CancelMsg decode_cancel(WireReader& r) {
  CancelMsg msg;
  msg.job_id = r.u64();
  r.expect_end();
  return msg;
}

}  // namespace bismo::net
