// Final-solution metric evaluation (paper Sec. 2.2) from an aerial
// intensity image: the shared pipeline behind SmoProblem::evaluate_solution
// and the stitched full-layout evaluation of src/shard/.  Both callers feed
// a normalized aerial intensity (binarized mask, grayscale source, Abbe
// imaging) and get Definitions 1-3 plus the SMO loss of that intensity;
// keeping one implementation guarantees a clip evaluated monolithically and
// the same clip evaluated through the tiled path score identically.
#ifndef BISMO_METRICS_SOLUTION_HPP
#define BISMO_METRICS_SOLUTION_HPP

#include <cstddef>

#include "grad/loss.hpp"
#include "litho/optics.hpp"
#include "litho/resist.hpp"
#include "math/grid2d.hpp"
#include "metrics/epe.hpp"

namespace bismo {

/// Final-solution quality under the paper's evaluation protocol
/// (binarized mask, grayscale source, Abbe imaging).
struct SolutionMetrics {
  double l2_nm2 = 0.0;            ///< Definition 1 at nominal dose
  double pvb_nm2 = 0.0;           ///< Definition 2 across dose corners
  std::size_t epe_violations = 0; ///< Definition 3 count
  std::size_t epe_samples = 0;
  double loss = 0.0;              ///< Lsmo of the binarized solution
};

/// Evaluate the paper's metrics from a normalized aerial intensity image:
/// prints at the dose corners give L2 (nominal) and PVB (min/max XOR), the
/// continuous resist gives EPE, and Lsmo is evaluated on the intensity
/// itself.  `intensity` and `target` must share shape (throws
/// std::invalid_argument otherwise).
SolutionMetrics evaluate_solution_metrics(const RealGrid& intensity,
                                          const RealGrid& target,
                                          const ResistModel& resist,
                                          const LossWeights& weights,
                                          const ProcessWindow& process_window,
                                          const EpeConfig& epe,
                                          double pixel_nm);

}  // namespace bismo

#endif  // BISMO_METRICS_SOLUTION_HPP
