// Evaluation metrics from paper Sec. 2.2:
//   Definition 1 -- squared L2 error between resist and target (nm^2),
//   Definition 2 -- process variation band: XOR area of the dose-corner
//                   resists (nm^2),
//   Definition 3 -- edge placement error (see epe.hpp).
// Resist images are binarized at 0.5 before measurement; areas are pixel
// counts scaled by pixel_nm^2.
#ifndef BISMO_METRICS_METRICS_HPP
#define BISMO_METRICS_METRICS_HPP

#include "math/grid2d.hpp"

namespace bismo {

/// Squared L2 error ||Z - Zt||^2 in nm^2 (Definition 1).  Both images are
/// binarized at 0.5; the squared difference of binary images is their
/// symmetric difference area.
double squared_l2_nm2(const RealGrid& z, const RealGrid& target,
                      double pixel_nm);

/// Process variation band area in nm^2 (Definition 2): XOR of the resist
/// prints under minimum and maximum process conditions.
double pvb_nm2(const RealGrid& z_min, const RealGrid& z_max, double pixel_nm);

/// Pattern area of a binary image in nm^2 (used by the dataset table).
double pattern_area_nm2(const RealGrid& image, double pixel_nm);

/// Bilinear interpolation of a grid at fractional pixel coordinates
/// (row, col); coordinates are clamped to the valid domain.
double bilinear_sample(const RealGrid& grid, double row, double col);

}  // namespace bismo

#endif  // BISMO_METRICS_METRICS_HPP
