#include "metrics/epe.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "metrics/metrics.hpp"

namespace bismo {
namespace {

/// Probe the continuous resist along the outward normal from (x, y) and
/// return the signed sub-pixel displacement of the 0.5 contour crossing
/// nearest the nominal edge; +/- search_range when no crossing is found.
double probe_normal(const RealGrid& z, double x_nm, double y_nm, double nx,
                    double ny, double pixel_nm, double search_nm) {
  const double step = pixel_nm / 4.0;
  const int half = static_cast<int>(std::ceil(search_nm / step));
  auto sample = [&](double t) {
    const double sx = x_nm + t * nx;
    const double sy = y_nm + t * ny;
    return bilinear_sample(z, sy / pixel_nm - 0.5, sx / pixel_nm - 0.5);
  };
  double best_t = 0.0;
  bool found = false;
  double prev = sample(-static_cast<double>(half) * step);
  for (int i = -half + 1; i <= half; ++i) {
    const double t = static_cast<double>(i) * step;
    const double cur = sample(t);
    if ((prev - 0.5) * (cur - 0.5) <= 0.0 && prev != cur) {
      // Linear sub-step interpolation of the 0.5 crossing.
      const double frac = (0.5 - prev) / (cur - prev);
      const double crossing = t - step + frac * step;
      if (!found || std::abs(crossing) < std::abs(best_t)) {
        best_t = crossing;
        found = true;
      }
    }
    prev = cur;
  }
  if (found) return best_t;
  // No contour within range: fully overprinted (resist everywhere) counts
  // as +range, fully vanished as -range.
  return sample(0.0) > 0.5 ? search_nm : -search_nm;
}

/// Emit sample points along one maximal edge run.  The run spans
/// `len_px` pixels at `pixel_nm` pitch; samples are spread uniformly with
/// approximately `spacing_nm` between them (at least one per run).
template <typename Emit>
void emit_run_samples(double run_start_nm, double len_px, double pixel_nm,
                      double spacing_nm, Emit emit) {
  const double length_nm = len_px * pixel_nm;
  const auto count =
      std::max<std::size_t>(1, static_cast<std::size_t>(length_nm / spacing_nm));
  const double pitch = length_nm / static_cast<double>(count);
  for (std::size_t i = 0; i < count; ++i) {
    emit(run_start_nm + (static_cast<double>(i) + 0.5) * pitch);
  }
}

}  // namespace

EpeResult measure_epe(const RealGrid& z, const RealGrid& target,
                      double pixel_nm, const EpeConfig& config) {
  if (!z.same_shape(target)) {
    throw std::invalid_argument("measure_epe: shape mismatch");
  }
  const std::size_t rows = target.rows();
  const std::size_t cols = target.cols();
  EpeResult result;
  auto inside = [&](std::size_t r, std::size_t c) {
    return target(r, c) > 0.5;
  };
  auto add_sample = [&](double x, double y, double nx, double ny) {
    EpeSample s;
    s.x_nm = x;
    s.y_nm = y;
    s.normal_x = nx;
    s.normal_y = ny;
    s.epe_nm = probe_normal(z, x, y, nx, ny, pixel_nm,
                            config.search_range_nm);
    s.violation = std::abs(s.epe_nm) > config.threshold_nm;
    result.points.push_back(s);
  };

  // Vertical edges: boundary between columns c and c+1.  The outward
  // normal points from pattern (1) to background (0).
  for (std::size_t cb = 0; cb + 1 < cols; ++cb) {
    std::size_t r = 0;
    while (r < rows) {
      const bool left = inside(r, cb);
      const bool right = inside(r, cb + 1);
      if (left == right) {
        ++r;
        continue;
      }
      const double nx = left ? 1.0 : -1.0;
      std::size_t run_start = r;
      while (r < rows && inside(r, cb) != inside(r, cb + 1) &&
             inside(r, cb) == left) {
        ++r;
      }
      const double x_edge = static_cast<double>(cb + 1) * pixel_nm;
      emit_run_samples(static_cast<double>(run_start) * pixel_nm,
                       static_cast<double>(r - run_start), pixel_nm,
                       config.sample_spacing_nm, [&](double y) {
                         add_sample(x_edge, y, nx, 0.0);
                       });
    }
  }

  // Horizontal edges: boundary between rows r and r+1.
  for (std::size_t rb = 0; rb + 1 < rows; ++rb) {
    std::size_t c = 0;
    while (c < cols) {
      const bool top = inside(rb, c);
      const bool bottom = inside(rb + 1, c);
      if (top == bottom) {
        ++c;
        continue;
      }
      const double ny = top ? 1.0 : -1.0;
      std::size_t run_start = c;
      while (c < cols && inside(rb, c) != inside(rb + 1, c) &&
             inside(rb, c) == top) {
        ++c;
      }
      const double y_edge = static_cast<double>(rb + 1) * pixel_nm;
      emit_run_samples(static_cast<double>(run_start) * pixel_nm,
                       static_cast<double>(c - run_start), pixel_nm,
                       config.sample_spacing_nm, [&](double x) {
                         add_sample(x, y_edge, 0.0, ny);
                       });
    }
  }

  result.samples = result.points.size();
  double sum_abs = 0.0;
  for (const EpeSample& s : result.points) {
    if (s.violation) ++result.violations;
    sum_abs += std::abs(s.epe_nm);
    result.max_abs_nm = std::max(result.max_abs_nm, std::abs(s.epe_nm));
  }
  if (result.samples > 0) {
    result.mean_abs_nm = sum_abs / static_cast<double>(result.samples);
  }
  return result;
}

}  // namespace bismo
