// Edge placement error (paper Sec. 2.2, Definition 3), ICCAD13-contest
// style: sample points are placed along the target pattern's edges at a
// fixed spacing; at each sample the printed contour position is probed
// along the edge normal (sub-pixel, by interpolating the continuous resist
// image to its 0.5 level); a sample whose |displacement| exceeds the EPE
// constraint counts as one violation.  Table 4 reports the per-clip
// violation count ("EPE avg.").
#ifndef BISMO_METRICS_EPE_HPP
#define BISMO_METRICS_EPE_HPP

#include <cstddef>
#include <vector>

#include "math/grid2d.hpp"

namespace bismo {

/// EPE measurement configuration.  Defaults follow the ICCAD13 contest
/// conventions (15 nm constraint, ~40 nm sample spacing) and scale with the
/// reduced tiles used in the benches.
struct EpeConfig {
  double sample_spacing_nm = 40.0;  ///< distance between edge sample points
  double threshold_nm = 15.0;       ///< violation constraint
  double search_range_nm = 60.0;    ///< normal-probe half range
};

/// One edge sample point with its measured displacement.
struct EpeSample {
  double x_nm = 0.0;       ///< sample location (edge midpoint)
  double y_nm = 0.0;
  double normal_x = 0.0;   ///< outward normal (unit, axis-aligned)
  double normal_y = 0.0;
  double epe_nm = 0.0;     ///< signed displacement along the outward normal
  bool violation = false;  ///< |epe| > threshold
};

/// Aggregate EPE measurement over one clip.
struct EpeResult {
  std::size_t violations = 0;  ///< Table 4's per-clip EPE count
  std::size_t samples = 0;
  double mean_abs_nm = 0.0;
  double max_abs_nm = 0.0;
  std::vector<EpeSample> points;  ///< per-sample detail
};

/// Measure EPE of a continuous resist image `z` (values in [0,1], printed
/// contour at the 0.5 level) against the binary `target` grid.  `pixel_nm`
/// converts pixels to nm.  Throws std::invalid_argument on shape mismatch.
EpeResult measure_epe(const RealGrid& z, const RealGrid& target,
                      double pixel_nm, const EpeConfig& config = {});

}  // namespace bismo

#endif  // BISMO_METRICS_EPE_HPP
