#include "metrics/solution.hpp"

#include <stdexcept>

#include "metrics/metrics.hpp"

namespace bismo {

SolutionMetrics evaluate_solution_metrics(const RealGrid& intensity,
                                          const RealGrid& target,
                                          const ResistModel& resist,
                                          const LossWeights& weights,
                                          const ProcessWindow& process_window,
                                          const EpeConfig& epe,
                                          double pixel_nm) {
  if (!intensity.same_shape(target)) {
    throw std::invalid_argument(
        "evaluate_solution_metrics: intensity/target shape mismatch");
  }
  const ProcessWindow& pw = process_window;
  const RealGrid print_nom = resist.print(intensity);
  const RealGrid print_min =
      resist.print(intensity * (pw.dose_min * pw.dose_min));
  const RealGrid print_max =
      resist.print(intensity * (pw.dose_max * pw.dose_max));

  SolutionMetrics out;
  out.l2_nm2 = squared_l2_nm2(print_nom, target, pixel_nm);
  out.pvb_nm2 = pvb_nm2(print_min, print_max, pixel_nm);

  const RealGrid z_cont = resist.apply(intensity);
  const EpeResult epe_result = measure_epe(z_cont, target, pixel_nm, epe);
  out.epe_violations = epe_result.violations;
  out.epe_samples = epe_result.samples;

  const SmoLoss loss = evaluate_smo_loss(intensity, target, resist, weights,
                                         pw, /*want_backprop=*/false);
  out.loss = loss.total;
  return out;
}

}  // namespace bismo
