#include "metrics/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bismo {

double squared_l2_nm2(const RealGrid& z, const RealGrid& target,
                      double pixel_nm) {
  if (!z.same_shape(target)) {
    throw std::invalid_argument("squared_l2_nm2: shape mismatch");
  }
  std::size_t diff = 0;
  for (std::size_t i = 0; i < z.size(); ++i) {
    const bool a = z[i] > 0.5;
    const bool b = target[i] > 0.5;
    if (a != b) ++diff;
  }
  return static_cast<double>(diff) * pixel_nm * pixel_nm;
}

double pvb_nm2(const RealGrid& z_min, const RealGrid& z_max, double pixel_nm) {
  if (!z_min.same_shape(z_max)) {
    throw std::invalid_argument("pvb_nm2: shape mismatch");
  }
  std::size_t band = 0;
  for (std::size_t i = 0; i < z_min.size(); ++i) {
    const bool a = z_min[i] > 0.5;
    const bool b = z_max[i] > 0.5;
    if (a != b) ++band;
  }
  return static_cast<double>(band) * pixel_nm * pixel_nm;
}

double pattern_area_nm2(const RealGrid& image, double pixel_nm) {
  std::size_t on = 0;
  for (double v : image) {
    if (v > 0.5) ++on;
  }
  return static_cast<double>(on) * pixel_nm * pixel_nm;
}

double bilinear_sample(const RealGrid& grid, double row, double col) {
  const double max_r = static_cast<double>(grid.rows()) - 1.0;
  const double max_c = static_cast<double>(grid.cols()) - 1.0;
  const double r = std::clamp(row, 0.0, max_r);
  const double c = std::clamp(col, 0.0, max_c);
  const auto r0 = static_cast<std::size_t>(r);
  const auto c0 = static_cast<std::size_t>(c);
  const std::size_t r1 = std::min(r0 + 1, grid.rows() - 1);
  const std::size_t c1 = std::min(c0 + 1, grid.cols() - 1);
  const double fr = r - static_cast<double>(r0);
  const double fc = c - static_cast<double>(c0);
  return grid(r0, c0) * (1 - fr) * (1 - fc) + grid(r0, c1) * (1 - fr) * fc +
         grid(r1, c0) * fr * (1 - fc) + grid(r1, c1) * fr * fc;
}

}  // namespace bismo
