#include "litho/hopkins.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fft/fft.hpp"
#include "fft/kernels/kernel.hpp"
#include "linalg/cmatrix.hpp"
#include "linalg/hermitian_eig.hpp"
#include "parallel/reduction.hpp"

namespace bismo {
namespace {

/// Sparse row of the stacked-pupil matrix A: pass-band bin indices (sorted)
/// and the complex entries sqrt(w) * H value at each.
struct StackRow {
  const std::vector<std::uint32_t>* indices = nullptr;
  std::vector<std::complex<double>> entries;
};

/// Inner product <row_a, row_b> = sum_b a[b] * conj(b[b]) over the
/// intersection of the two sorted index lists.
std::complex<double> row_dot(const StackRow& a, const StackRow& b) {
  std::complex<double> acc{};
  const auto& ia = *a.indices;
  const auto& ib = *b.indices;
  std::size_t x = 0;
  std::size_t y = 0;
  while (x < ia.size() && y < ib.size()) {
    if (ia[x] < ib[y]) {
      ++x;
    } else if (ia[x] > ib[y]) {
      ++y;
    } else {
      acc += a.entries[x] * std::conj(b.entries[y]);
      ++x;
      ++y;
    }
  }
  return acc;
}

}  // namespace

SocsDecomposition::SocsDecomposition(const AbbeImaging& abbe,
                                     const RealGrid& source, std::size_t q,
                                     double cutoff) {
  const SourceGeometry& geometry = abbe.geometry();
  const auto& pts = geometry.points();
  if (source.rows() != geometry.dim() || source.cols() != geometry.dim()) {
    throw std::invalid_argument("SocsDecomposition: source shape mismatch");
  }

  // Normalization matches AbbeImaging: weights divided by the *total* power
  // over valid points (not just the retained ones).
  double total_weight = 0.0;
  for (const SourcePoint& p : pts) total_weight += source(p.row, p.col);
  if (total_weight <= 0.0) {
    throw std::invalid_argument("SocsDecomposition: source has no power");
  }

  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (source(pts[i].row, pts[i].col) > cutoff) active.push_back(i);
  }
  if (active.empty()) {
    throw std::invalid_argument("SocsDecomposition: no effective points");
  }

  // Assemble sparse rows sqrt(j/W) * H_sigma.
  std::vector<StackRow> rows(active.size());
  for (std::size_t k = 0; k < active.size(); ++k) {
    const std::size_t i = active[k];
    const PassBand& band = abbe.passband(i);
    const double w = source(pts[i].row, pts[i].col) / total_weight;
    const double sw = std::sqrt(w);
    rows[k].indices = &band.indices;
    rows[k].entries.resize(band.indices.size());
    if (band.values.empty()) {
      std::fill(rows[k].entries.begin(), rows[k].entries.end(),
                std::complex<double>(sw, 0.0));
    } else {
      for (std::size_t b = 0; b < band.indices.size(); ++b) {
        rows[k].entries[b] = sw * band.values[b];
      }
    }
  }

  // Band = union of all pass-bands; map flat bin index -> band position.
  {
    std::vector<std::uint32_t> all;
    for (const auto& row : rows) {
      all.insert(all.end(), row.indices->begin(), row.indices->end());
    }
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    band_ = std::move(all);
  }

  // Gram matrix G = A A^H via sorted-intersection dot products.
  const std::size_t m = rows.size();
  CMatrix gram(m, m);
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = a; b < m; ++b) {
      const std::complex<double> g = row_dot(rows[a], rows[b]);
      gram(a, b) = g;
      gram(b, a) = std::conj(g);
    }
  }
  for (std::size_t a = 0; a < m; ++a) trace_ += gram(a, a).real();

  const HermitianEig eig = hermitian_eig(std::move(gram));

  // Map the top-q eigenvectors back to frequency-domain kernels
  // phi = A^H u / sqrt(kappa), assembled over the shared band.
  const std::size_t keep = std::min(q, m);
  std::vector<std::uint32_t> band_pos_of_bin;  // bin -> band position + 1
  {
    const std::uint32_t max_bin = band_.empty() ? 0 : band_.back();
    band_pos_of_bin.assign(static_cast<std::size_t>(max_bin) + 1, 0);
    for (std::size_t b = 0; b < band_.size(); ++b) {
      band_pos_of_bin[band_[b]] = static_cast<std::uint32_t>(b) + 1;
    }
  }
  for (std::size_t qi = 0; qi < keep; ++qi) {
    const double kappa = eig.values[qi];
    if (kappa <= 1e-14 * std::max(trace_, 1e-300)) break;  // rank exhausted
    SocsKernel kernel;
    kernel.weight = kappa;
    kernel.values.assign(band_.size(), std::complex<double>{});
    const double inv_sqrt = 1.0 / std::sqrt(kappa);
    for (std::size_t s = 0; s < m; ++s) {
      const std::complex<double> u = eig.vectors(s, qi);
      if (u == std::complex<double>{}) continue;
      const auto& idx = *rows[s].indices;
      for (std::size_t b = 0; b < idx.size(); ++b) {
        const std::uint32_t pos = band_pos_of_bin[idx[b]] - 1;
        kernel.values[pos] += std::conj(rows[s].entries[b]) * u * inv_sqrt;
      }
    }
    kernels_.push_back(std::move(kernel));
  }
}

ComplexGrid SocsDecomposition::dense_kernel(std::size_t q,
                                            std::size_t mask_dim) const {
  if (q >= kernels_.size()) {
    throw std::out_of_range("SocsDecomposition::dense_kernel: bad index");
  }
  ComplexGrid out(mask_dim, mask_dim);
  for (std::size_t b = 0; b < band_.size(); ++b) {
    out[band_[b]] = kernels_[q].values[b];
  }
  return out;
}

HopkinsImaging::HopkinsImaging(const OpticsConfig& optics,
                               SocsDecomposition socs, ThreadPool* pool,
                               std::shared_ptr<sim::WorkspaceSet> workspaces)
    : optics_(optics),
      socs_(std::move(socs)),
      band_rows_(sim::occupied_rows(socs_.band(), optics.mask_dim)),
      pool_(pool),
      workspaces_(std::move(workspaces)) {
  if (workspaces_ == nullptr) {
    workspaces_ = std::make_shared<sim::WorkspaceSet>();
  }
}

void HopkinsImaging::field(const ComplexGrid& o, std::size_t q,
                           ComplexGrid& out) const {
  if (o.rows() != optics_.mask_dim || o.cols() != optics_.mask_dim) {
    throw std::invalid_argument("HopkinsImaging::field: spectrum shape");
  }
  const auto& band = socs_.band();
  const auto& socs_kernel = socs_.kernels().at(q);
  if (!out.same_shape(o)) out.resize(o.rows(), o.cols());
  out.fill(std::complex<double>{});
  const fft::FftKernel& kernel = fft::active_kernel();
  sim::for_each_index_run(
      band.data(), band.size(),
      [&](std::size_t k, std::uint32_t start, std::size_t len) {
        kernel.cmul(out.data() + start, o.data() + start,
                    socs_kernel.values.data() + k, len);
      });
  ifft2(out);
}

ComplexGrid HopkinsImaging::field(const ComplexGrid& o, std::size_t q) const {
  ComplexGrid masked;
  field(o, q, masked);
  return masked;
}

sim::BandRef HopkinsImaging::component_band(std::size_t c) const {
  const auto& band = socs_.band();
  sim::BandRef ref;
  ref.bins = band.data();
  ref.vals = socs_.kernels()[c].values.data();
  ref.nbins = band.size();
  ref.rows = band_rows_.data();
  ref.nrows = band_rows_.size();
  return ref;
}

RealGrid HopkinsImaging::aerial(const ComplexGrid& o) const {
  if (o.rows() != optics_.mask_dim || o.cols() != optics_.mask_dim) {
    throw std::invalid_argument("HopkinsImaging::aerial: spectrum shape");
  }
  const auto& kernels = socs_.kernels();
  if (kernels.empty()) return RealGrid(o.rows(), o.cols(), 0.0);

  // Component/weight lists live in the workspace set so steady-state
  // evaluations reuse their capacity instead of reallocating per call.
  std::vector<std::uint32_t>& comps = workspaces_->component_scratch();
  std::vector<double>& weights = workspaces_->weight_scratch();
  comps.resize(kernels.size());
  weights.resize(kernels.size());
  for (std::size_t q = 0; q < kernels.size(); ++q) {
    comps[q] = static_cast<std::uint32_t>(q);
    weights[q] = kernels[q].weight;
  }
  return sim::accumulate_intensity(*this, o, comps, weights);
}

}  // namespace bismo
