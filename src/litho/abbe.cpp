#include "litho/abbe.hpp"

#include <algorithm>
#include <stdexcept>

#include "fft/fft.hpp"
#include "parallel/reduction.hpp"

namespace bismo {

AbbeImaging::AbbeImaging(const OpticsConfig& optics,
                         const SourceGeometry& geometry, ThreadPool* pool,
                         std::shared_ptr<sim::WorkspaceSet> workspaces)
    : optics_(optics),
      geometry_(geometry),
      pupil_(optics),
      pool_(pool),
      workspaces_(std::move(workspaces)) {
  if (workspaces_ == nullptr) {
    workspaces_ = std::make_shared<sim::WorkspaceSet>();
  }
  const auto& pts = geometry_.points();
  passbands_.resize(pts.size());
  band_rows_.resize(pts.size());
  auto build = [this, &pts](std::size_t i) {
    passbands_[i] = pupil_.shifted_passband(pts[i].freq_x, pts[i].freq_y);
    band_rows_[i] = sim::occupied_rows(passbands_[i].indices, optics_.mask_dim);
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(pts.size(), build);
  } else {
    for (std::size_t i = 0; i < pts.size(); ++i) build(i);
  }
}

ComplexGrid AbbeImaging::apply_passband(const ComplexGrid& o,
                                        std::size_t point_index) const {
  const PassBand& band = passbands_[point_index];
  ComplexGrid masked(o.rows(), o.cols());
  if (band.values.empty()) {
    for (std::uint32_t idx : band.indices) masked[idx] = o[idx];
  } else {
    for (std::size_t k = 0; k < band.indices.size(); ++k) {
      masked[band.indices[k]] = o[band.indices[k]] * band.values[k];
    }
  }
  return masked;
}

ComplexGrid AbbeImaging::field(const ComplexGrid& o,
                               std::size_t point_index) const {
  if (o.rows() != optics_.mask_dim || o.cols() != optics_.mask_dim) {
    throw std::invalid_argument("AbbeImaging::field: spectrum shape mismatch");
  }
  ComplexGrid a = apply_passband(o, point_index);
  ifft2(a);
  return a;
}

void AbbeImaging::field_into(const ComplexGrid& o, std::size_t c,
                             sim::SimWorkspace& ws) const {
  const PassBand& band = passbands_[c];
  ws.sparse_inverse_field(
      o, band.indices.data(),
      band.values.empty() ? nullptr : band.values.data(), band.indices.size(),
      band_rows_[c].data(), band_rows_[c].size());
}

void AbbeImaging::adjoint_accumulate(std::size_t c, sim::SimWorkspace& ws,
                                     ComplexGrid& go) const {
  const PassBand& band = passbands_[c];
  ws.adjoint_band_accumulate(
      band.indices.data(),
      band.values.empty() ? nullptr : band.values.data(), band.indices.size(),
      band_rows_[c].data(), band_rows_[c].size(), go);
}

AbbeAerial AbbeImaging::aerial(const ComplexGrid& o, const RealGrid& j,
                               double cutoff) const {
  const auto& pts = geometry_.points();
  if (j.rows() != geometry_.dim() || j.cols() != geometry_.dim()) {
    throw std::invalid_argument("AbbeImaging::aerial: source shape mismatch");
  }
  if (o.rows() != optics_.mask_dim || o.cols() != optics_.mask_dim) {
    throw std::invalid_argument("AbbeImaging::aerial: spectrum shape mismatch");
  }

  // Collect the contributing points first so the pooled pass is dense.
  std::vector<std::uint32_t> active;
  std::vector<double> weights;
  active.reserve(pts.size());
  weights.reserve(pts.size());
  double total_weight = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double w = j(pts[i].row, pts[i].col);
    total_weight += w;
    if (w > cutoff) {
      active.push_back(static_cast<std::uint32_t>(i));
      weights.push_back(w);
    }
  }

  AbbeAerial out;
  out.total_weight = total_weight;
  if (active.empty() || total_weight <= 0.0) {
    out.intensity = RealGrid(o.rows(), o.cols(), 0.0);
    return out;
  }

  out.intensity = sim::accumulate_intensity(*this, o, active, weights);
  out.intensity *= 1.0 / total_weight;
  return out;
}

}  // namespace bismo
