#include "litho/abbe.hpp"

#include <algorithm>
#include <stdexcept>

#include "fft/fft.hpp"
#include "parallel/reduction.hpp"

namespace bismo {

AbbeImaging::AbbeImaging(const OpticsConfig& optics,
                         const SourceGeometry& geometry, ThreadPool* pool)
    : optics_(optics), geometry_(geometry), pupil_(optics), pool_(pool) {
  const auto& pts = geometry_.points();
  passbands_.resize(pts.size());
  auto build = [this, &pts](std::size_t i) {
    passbands_[i] = pupil_.shifted_passband(pts[i].freq_x, pts[i].freq_y);
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(pts.size(), build);
  } else {
    for (std::size_t i = 0; i < pts.size(); ++i) build(i);
  }
}

ComplexGrid AbbeImaging::apply_passband(const ComplexGrid& o,
                                        std::size_t point_index) const {
  const PassBand& band = passbands_[point_index];
  ComplexGrid masked(o.rows(), o.cols());
  if (band.values.empty()) {
    for (std::uint32_t idx : band.indices) masked[idx] = o[idx];
  } else {
    for (std::size_t k = 0; k < band.indices.size(); ++k) {
      masked[band.indices[k]] = o[band.indices[k]] * band.values[k];
    }
  }
  return masked;
}

ComplexGrid AbbeImaging::field(const ComplexGrid& o,
                               std::size_t point_index) const {
  if (o.rows() != optics_.mask_dim || o.cols() != optics_.mask_dim) {
    throw std::invalid_argument("AbbeImaging::field: spectrum shape mismatch");
  }
  ComplexGrid a = apply_passband(o, point_index);
  ifft2(a);
  return a;
}

AbbeAerial AbbeImaging::aerial(const ComplexGrid& o, const RealGrid& j,
                               double cutoff) const {
  const auto& pts = geometry_.points();
  if (j.rows() != geometry_.dim() || j.cols() != geometry_.dim()) {
    throw std::invalid_argument("AbbeImaging::aerial: source shape mismatch");
  }
  if (o.rows() != optics_.mask_dim || o.cols() != optics_.mask_dim) {
    throw std::invalid_argument("AbbeImaging::aerial: spectrum shape mismatch");
  }

  // Collect the contributing points first so the parallel loop is dense.
  std::vector<std::size_t> active;
  active.reserve(pts.size());
  double total_weight = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double w = j(pts[i].row, pts[i].col);
    total_weight += w;
    if (w > cutoff) active.push_back(i);
  }

  AbbeAerial out;
  out.total_weight = total_weight;
  out.intensity = RealGrid(o.rows(), o.cols(), 0.0);
  if (active.empty() || total_weight <= 0.0) return out;

  // Static partition of points over a fixed slot count (see
  // parallel/reduction.hpp): task s owns a fixed index range and its own
  // accumulator, and the accumulators are combined in task order, so the
  // floating-point summation order -- and therefore the result -- is
  // bitwise identical for any thread count including serial.
  const std::size_t slots = reduction_slots(active.size());
  std::vector<RealGrid> partial(slots, RealGrid(o.rows(), o.cols(), 0.0));

  auto task = [&](std::size_t s) {
    const std::size_t begin = s * active.size() / slots;
    const std::size_t end = (s + 1) * active.size() / slots;
    RealGrid& acc = partial[s];
    for (std::size_t k = begin; k < end; ++k) {
      const std::size_t i = active[k];
      const double w = j(pts[i].row, pts[i].col);
      const ComplexGrid a = field(o, i);
      for (std::size_t q = 0; q < acc.size(); ++q) {
        acc[q] += w * std::norm(a[q]);
      }
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(slots, task);
  } else {
    for (std::size_t s = 0; s < slots; ++s) task(s);
  }
  for (std::size_t s = 0; s < slots; ++s) out.intensity += partial[s];
  const double inv_w = 1.0 / total_weight;
  out.intensity *= inv_w;
  return out;
}

}  // namespace bismo
