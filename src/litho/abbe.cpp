#include "litho/abbe.hpp"

#include <algorithm>
#include <stdexcept>

#include "fft/fft.hpp"
#include "fft/kernels/kernel.hpp"
#include "parallel/reduction.hpp"

namespace bismo {

AbbeImaging::AbbeImaging(const OpticsConfig& optics,
                         const SourceGeometry& geometry, ThreadPool* pool,
                         std::shared_ptr<sim::WorkspaceSet> workspaces)
    : optics_(optics),
      geometry_(geometry),
      pupil_(optics),
      pool_(pool),
      workspaces_(std::move(workspaces)) {
  if (workspaces_ == nullptr) {
    workspaces_ = std::make_shared<sim::WorkspaceSet>();
  }
  const auto& pts = geometry_.points();
  passbands_.resize(pts.size());
  band_rows_.resize(pts.size());
  auto build = [this, &pts](std::size_t i) {
    passbands_[i] = pupil_.shifted_passband(pts[i].freq_x, pts[i].freq_y);
    band_rows_[i] = sim::occupied_rows(passbands_[i].indices, optics_.mask_dim);
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(pts.size(), build);
  } else {
    for (std::size_t i = 0; i < pts.size(); ++i) build(i);
  }
}

void AbbeImaging::apply_passband(const ComplexGrid& o,
                                 std::size_t point_index,
                                 ComplexGrid& out) const {
  const PassBand& band = passbands_[point_index];
  if (!out.same_shape(o)) out.resize(o.rows(), o.cols());
  out.fill(std::complex<double>{});
  const fft::FftKernel& kernel = fft::active_kernel();
  if (band.values.empty()) {
    sim::for_each_index_run(
        band.indices.data(), band.indices.size(),
        [&](std::size_t, std::uint32_t start, std::size_t len) {
          std::copy(o.data() + start, o.data() + start + len,
                    out.data() + start);
        });
  } else {
    sim::for_each_index_run(
        band.indices.data(), band.indices.size(),
        [&](std::size_t k, std::uint32_t start, std::size_t len) {
          kernel.cmul(out.data() + start, o.data() + start,
                      band.values.data() + k, len);
        });
  }
}

ComplexGrid AbbeImaging::apply_passband(const ComplexGrid& o,
                                        std::size_t point_index) const {
  ComplexGrid masked;
  apply_passband(o, point_index, masked);
  return masked;
}

void AbbeImaging::field(const ComplexGrid& o, std::size_t point_index,
                        ComplexGrid& out) const {
  if (o.rows() != optics_.mask_dim || o.cols() != optics_.mask_dim) {
    throw std::invalid_argument("AbbeImaging::field: spectrum shape mismatch");
  }
  apply_passband(o, point_index, out);
  ifft2(out);
}

ComplexGrid AbbeImaging::field(const ComplexGrid& o,
                               std::size_t point_index) const {
  ComplexGrid a;
  field(o, point_index, a);
  return a;
}

sim::BandRef AbbeImaging::component_band(std::size_t c) const {
  const PassBand& band = passbands_[c];
  sim::BandRef ref;
  ref.bins = band.indices.data();
  ref.vals = band.values.empty() ? nullptr : band.values.data();
  ref.nbins = band.indices.size();
  ref.rows = band_rows_[c].data();
  ref.nrows = band_rows_[c].size();
  return ref;
}

AbbeAerial AbbeImaging::aerial(const ComplexGrid& o, const RealGrid& j,
                               double cutoff) const {
  const auto& pts = geometry_.points();
  if (j.rows() != geometry_.dim() || j.cols() != geometry_.dim()) {
    throw std::invalid_argument("AbbeImaging::aerial: source shape mismatch");
  }
  if (o.rows() != optics_.mask_dim || o.cols() != optics_.mask_dim) {
    throw std::invalid_argument("AbbeImaging::aerial: spectrum shape mismatch");
  }

  // Collect the contributing points first so the pooled pass is dense.
  // The index/weight lists live in the workspace set, so steady-state
  // evaluations reuse their capacity instead of reallocating per call.
  std::vector<std::uint32_t>& active = workspaces_->component_scratch();
  std::vector<double>& weights = workspaces_->weight_scratch();
  active.clear();
  weights.clear();
  active.reserve(pts.size());
  weights.reserve(pts.size());
  double total_weight = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double w = j(pts[i].row, pts[i].col);
    total_weight += w;
    if (w > cutoff) {
      active.push_back(static_cast<std::uint32_t>(i));
      weights.push_back(w);
    }
  }

  AbbeAerial out;
  out.total_weight = total_weight;
  if (active.empty() || total_weight <= 0.0) {
    out.intensity = RealGrid(o.rows(), o.cols(), 0.0);
    return out;
  }

  out.intensity = sim::accumulate_intensity(*this, o, active, weights);
  out.intensity *= 1.0 / total_weight;
  return out;
}

}  // namespace bismo
