#include "litho/source.hpp"

#include <cmath>
#include <stdexcept>

namespace bismo {

namespace {
constexpr double kPi = 3.141592653589793238462643383279502884;

/// Smallest absolute angular distance (radians) between `a` and `b`.
double angle_distance(double a, double b) {
  double d = std::fmod(std::abs(a - b), 2.0 * kPi);
  return std::min(d, 2.0 * kPi - d);
}
}  // namespace

SourceGeometry::SourceGeometry(std::size_t nj, const OpticsConfig& optics)
    : nj_(nj), na_over_lambda_(optics.cutoff_frequency()), valid_(nj, nj, 0.0) {
  if (nj < 2) throw std::invalid_argument("SourceGeometry: Nj must be >= 2");
  points_.reserve(nj * nj);
  for (std::size_t r = 0; r < nj; ++r) {
    const double sy = sigma_of(r);
    for (std::size_t c = 0; c < nj; ++c) {
      const double sx = sigma_of(c);
      if (sx * sx + sy * sy > 1.0 + 1e-12) continue;
      valid_(r, c) = 1.0;
      SourcePoint p;
      p.row = r;
      p.col = c;
      p.sigma_x = sx;
      p.sigma_y = sy;
      p.freq_x = sx * na_over_lambda_;
      p.freq_y = sy * na_over_lambda_;
      points_.push_back(p);
    }
  }
}

double SourceGeometry::sigma_of(std::size_t idx) const {
  // Nj points spanning [-1, 1] inclusive.
  return -1.0 + 2.0 * static_cast<double>(idx) / static_cast<double>(nj_ - 1);
}

RealGrid make_source(const SourceGeometry& geometry, const SourceSpec& spec) {
  const std::size_t nj = geometry.dim();
  RealGrid j(nj, nj, 0.0);
  const bool uses_inner_radius = spec.shape == SourceShape::kAnnular ||
                                 spec.shape == SourceShape::kDipoleX ||
                                 spec.shape == SourceShape::kDipoleY ||
                                 spec.shape == SourceShape::kQuasar;
  if (uses_inner_radius && spec.sigma_out < spec.sigma_in) {
    throw std::invalid_argument("make_source: sigma_out < sigma_in");
  }
  const double half_opening = spec.opening_deg * kPi / 180.0 / 2.0;
  for (const SourcePoint& p : geometry.points()) {
    const double rho = std::hypot(p.sigma_x, p.sigma_y);
    const double phi = std::atan2(p.sigma_y, p.sigma_x);
    bool on = false;
    switch (spec.shape) {
      case SourceShape::kAnnular:
        on = rho >= spec.sigma_in && rho <= spec.sigma_out;
        break;
      case SourceShape::kConventional:
        on = rho <= spec.sigma_out;
        break;
      case SourceShape::kDipoleX:
        on = rho >= spec.sigma_in && rho <= spec.sigma_out &&
             (angle_distance(phi, 0.0) <= half_opening ||
              angle_distance(phi, kPi) <= half_opening);
        break;
      case SourceShape::kDipoleY:
        on = rho >= spec.sigma_in && rho <= spec.sigma_out &&
             (angle_distance(phi, kPi / 2.0) <= half_opening ||
              angle_distance(phi, -kPi / 2.0) <= half_opening);
        break;
      case SourceShape::kQuasar: {
        on = rho >= spec.sigma_in && rho <= spec.sigma_out;
        if (on) {
          bool near_pole = false;
          for (int k = 0; k < 4; ++k) {
            const double pole = kPi / 4.0 + k * kPi / 2.0;
            near_pole = near_pole || angle_distance(phi, pole) <= half_opening;
          }
          on = near_pole;
        }
        break;
      }
      case SourceShape::kPoint:
        on = rho <= 1e-9;
        break;
    }
    if (on) j(p.row, p.col) = 1.0;
  }
  if (spec.shape == SourceShape::kPoint) {
    // Guarantee at least the centre-most point is lit even when the sigma
    // grid has no exact origin sample (even Nj).
    double best = 2.0;
    const SourcePoint* centre = nullptr;
    for (const SourcePoint& p : geometry.points()) {
      const double rho = std::hypot(p.sigma_x, p.sigma_y);
      if (rho < best) {
        best = rho;
        centre = &p;
      }
    }
    if (centre != nullptr) j(centre->row, centre->col) = 1.0;
  }
  return j;
}

std::string to_string(SourceShape shape) {
  switch (shape) {
    case SourceShape::kAnnular:
      return "annular";
    case SourceShape::kConventional:
      return "conventional";
    case SourceShape::kDipoleX:
      return "dipole-x";
    case SourceShape::kDipoleY:
      return "dipole-y";
    case SourceShape::kQuasar:
      return "quasar";
    case SourceShape::kPoint:
      return "point";
  }
  return "unknown";
}

double source_power(const SourceGeometry& geometry, const RealGrid& source) {
  double acc = 0.0;
  for (const SourcePoint& p : geometry.points()) acc += source(p.row, p.col);
  return acc;
}

std::size_t effective_point_count(const SourceGeometry& geometry,
                                  const RealGrid& source, double cutoff) {
  std::size_t n = 0;
  for (const SourcePoint& p : geometry.points()) {
    if (source(p.row, p.col) > cutoff) ++n;
  }
  return n;
}

}  // namespace bismo
