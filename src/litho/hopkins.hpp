// Hopkins / SOCS forward imaging engine (paper Eqs. 3-4).
//
// The transmission cross-coefficients are never formed explicitly.  Stack
// the shifted pupils into A with one row per effective source point,
//   A[sigma][b] = sqrt(j_sigma / W) * H(f_b + f_sigma),
// restricted to the band-limited frequency list {f_b}; then TCC = A^H A and
// the SOCS kernels are the eigenpairs of TCC.  We obtain them exactly from
// the small sigma x sigma Gram matrix G = A A^H (cyclic Jacobi), mapping
// eigenvectors back through A^H:
//   G u_q = kappa_q u_q   =>   phi_q = A^H u_q / sqrt(kappa_q),
// so that  I = sum_q kappa_q |IFFT(phi_q .* O)|^2  (Eq. 4) and, at full rank
// Q = rank(G), Hopkins reproduces Abbe up to floating-point roundoff --
// truncation to Q kernels is the *only* approximation, exactly as in the
// paper's comparison.
//
// The 1/W normalization matches the Abbe engine (clear field = 1).
#ifndef BISMO_LITHO_HOPKINS_HPP
#define BISMO_LITHO_HOPKINS_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "litho/abbe.hpp"
#include "litho/optics.hpp"
#include "litho/source.hpp"
#include "math/grid2d.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/imaging_model.hpp"

namespace bismo {

/// One SOCS coherent kernel: weight kappa_q and the frequency-domain kernel
/// values over the shared band index list.
struct SocsKernel {
  double weight = 0.0;                        ///< kappa_q (eigenvalue)
  std::vector<std::complex<double>> values;   ///< phi_q over band indices
};

/// Truncated sum-of-coherent-systems decomposition of the TCC for a fixed
/// grayscale source.  Rebuilding after a source change is the expensive
/// TCC-regeneration step that slows the Abbe-Hopkins hybrid AM-SMO [13].
class SocsDecomposition {
 public:
  /// Decompose for the given source magnitudes.  `q` kernels are kept
  /// (paper Sec. 4: Q = 24); fewer when the source has lower rank.
  /// `cutoff` drops source points with weight below it from the stack.
  SocsDecomposition(const AbbeImaging& abbe, const RealGrid& source,
                    std::size_t q, double cutoff = 1e-9);

  /// Shared band-limited frequency bin list (flat indices, row-major).
  const std::vector<std::uint32_t>& band() const noexcept { return band_; }

  /// Retained kernels, strongest first.
  const std::vector<SocsKernel>& kernels() const noexcept { return kernels_; }

  /// Sum of *all* eigenvalues (= trace of TCC); the retained fraction
  /// sum(kappa_q)/trace quantifies the truncation error.
  double eigenvalue_trace() const noexcept { return trace_; }

  /// Dense frequency-domain kernel for visualization/tests.
  ComplexGrid dense_kernel(std::size_t q, std::size_t mask_dim) const;

 private:
  std::vector<std::uint32_t> band_;
  std::vector<SocsKernel> kernels_;
  double trace_ = 0.0;
};

/// Hopkins forward imaging engine (Eq. 4) over a prebuilt decomposition.
/// Implements the unified `sim::ImagingModel` interface (one component per
/// SOCS kernel) so it shares the allocation-free pooled passes -- and,
/// optionally, the per-thread workspaces -- with the Abbe engine.
class HopkinsImaging : public sim::ImagingModel {
 public:
  /// `pool` may be null; borrowed, not owned.  `workspaces` may be shared
  /// with the Abbe engine of the same problem (null = a fresh set).
  HopkinsImaging(const OpticsConfig& optics, SocsDecomposition socs,
                 ThreadPool* pool = nullptr,
                 std::shared_ptr<sim::WorkspaceSet> workspaces = nullptr);

  /// Aerial intensity for mask spectrum `o` (= fft2 of activated mask).
  RealGrid aerial(const ComplexGrid& o) const;

  /// Coherent field for kernel q: IFFT(phi_q .* O).  Allocating reference
  /// path; hot loops use `field_into`.
  ComplexGrid field(const ComplexGrid& o, std::size_t q) const;

  /// Out-param variant: writes the field into `out` (resized on first
  /// use, reused afterwards), removing the per-call grid allocation.
  /// The transform still runs through the convenience `ifft2`; hot loops
  /// use `field_into`, which is fully allocation-free via the workspace.
  void field(const ComplexGrid& o, std::size_t q, ComplexGrid& out) const;

  const SocsDecomposition& socs() const noexcept { return socs_; }
  const OpticsConfig& optics() const noexcept { return optics_; }

  // ---- sim::ImagingModel ----
  std::size_t grid_dim() const noexcept override { return optics_.mask_dim; }
  std::size_t components() const noexcept override {
    return socs_.kernels().size();
  }
  sim::BandRef component_band(std::size_t c) const override;
  ThreadPool* pool() const noexcept override { return pool_; }
  sim::WorkspaceSet& workspaces() const override { return *workspaces_; }

 private:
  OpticsConfig optics_;
  SocsDecomposition socs_;
  /// Sorted occupied grid rows of the shared band (the row-skip list).
  std::vector<std::uint32_t> band_rows_;
  ThreadPool* pool_;
  std::shared_ptr<sim::WorkspaceSet> workspaces_;
};

}  // namespace bismo

#endif  // BISMO_LITHO_HOPKINS_HPP
