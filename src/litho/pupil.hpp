// Projection pupil: the low-pass transfer function H of Eq. 5, evaluated
// analytically at shifted frequencies H(f + f_sigma, g + g_sigma) for every
// source point, which is what makes the Abbe pass-bands exact (no
// interpolation -- H is an indicator disc, optionally with a defocus phase).
#ifndef BISMO_LITHO_PUPIL_HPP
#define BISMO_LITHO_PUPIL_HPP

#include <complex>
#include <cstdint>
#include <vector>

#include "litho/optics.hpp"
#include "math/grid2d.hpp"

namespace bismo {

/// Sparse description of one shifted pupil pass-band over the Nm x Nm
/// frequency grid: which bins pass, and the (complex) pupil value at each.
/// `values` is empty when every passed value is exactly 1.0 (the in-focus
/// case), which lets hot loops skip the multiply.
struct PassBand {
  std::vector<std::uint32_t> indices;        ///< flat row-major bin indices
  std::vector<std::complex<double>> values;  ///< per-bin pupil value, or empty
};

/// The optical transfer function H(f, g) of Eq. 5 with an optional defocus
/// aberration phase (an extension the paper groups under process-window
/// considerations; defocus_nm = 0 reproduces the paper's binary disc).
class Pupil {
 public:
  /// Build for a given optics configuration (validated).
  explicit Pupil(const OpticsConfig& optics);

  /// H evaluated at a continuous frequency (cycles/nm); zero outside the
  /// cut-off disc, unit-magnitude (defocus phase only) inside.
  std::complex<double> value(double fx, double fy) const;

  /// True when (fx, fy) lies inside the cut-off disc.
  bool passes(double fx, double fy) const;

  /// Enumerate the pass-band of H(f + fsx, g + fsy) over the DFT frequency
  /// grid of the configured mask dimension.
  PassBand shifted_passband(double fsx, double fsy) const;

  /// Dense pupil image on the (unshifted) DFT grid; mainly for tests and
  /// visualization.
  ComplexGrid dense() const;

  /// The optics this pupil was built for.
  const OpticsConfig& optics() const noexcept { return optics_; }

 private:
  OpticsConfig optics_;
  double cutoff_sq_;  ///< (NA/lambda)^2
  bool has_defocus_;
};

}  // namespace bismo

#endif  // BISMO_LITHO_PUPIL_HPP
