// Parameterization of the optimization variables (paper Table 1):
//
//   Mask:    M = sigmoid(alpha_m * theta_M),  theta_M0 = +/- m0 from target
//   Source:  J = sigmoid(alpha_j * theta_J),  theta_J0 = +/- j0 from J0
//
// Both theta grids are unconstrained reals; the sigmoid keeps M in (0,1)
// (near-binary with steep alpha_m) and J grayscale in (0,1).  The cosine
// alternative mentioned (and rejected) in Sec. 3.1 is provided for the
// activation-ablation bench.
#ifndef BISMO_LITHO_ACTIVATION_HPP
#define BISMO_LITHO_ACTIVATION_HPP

#include "litho/source.hpp"
#include "math/grid2d.hpp"

namespace bismo {

/// Activation function choices for the ablation study.
enum class ActivationKind { kSigmoid, kCosine };

/// Steepness and initialization magnitudes from Table 1 / Sec. 4.
struct ActivationConfig {
  double alpha_mask = 9.0;    ///< alpha_m
  double mask_init = 1.0;     ///< m0
  double alpha_source = 2.0;  ///< alpha_j
  double source_init = 5.0;   ///< j0
  ActivationKind kind = ActivationKind::kSigmoid;
};

/// M = activation(alpha_m * theta_M).
RealGrid activate_mask(const RealGrid& theta_m, const ActivationConfig& cfg);

/// dM/dtheta_M expressed via the activated mask M (sigmoid path) or theta
/// (cosine path); shapes must match.
RealGrid mask_activation_derivative(const RealGrid& theta_m,
                                    const RealGrid& mask,
                                    const ActivationConfig& cfg);

/// J = activation(alpha_j * theta_J) masked to the valid sigma-disc points.
RealGrid activate_source(const RealGrid& theta_j,
                         const SourceGeometry& geometry,
                         const ActivationConfig& cfg);

/// dJ/dtheta_J (zero at invalid points).
RealGrid source_activation_derivative(const RealGrid& theta_j,
                                      const RealGrid& source,
                                      const SourceGeometry& geometry,
                                      const ActivationConfig& cfg);

/// theta_M initialization from a binary target pattern: +m0 where the
/// target is 1, -m0 elsewhere (Table 1; the initial mask is the target,
/// which also seeds SRAF growth during MO).
RealGrid init_mask_params(const RealGrid& target, const ActivationConfig& cfg);

/// theta_J initialization from a binary template source J0: +j0 where lit,
/// -j0 elsewhere (Table 1).
RealGrid init_source_params(const RealGrid& j0, const ActivationConfig& cfg);

}  // namespace bismo

#endif  // BISMO_LITHO_ACTIVATION_HPP
