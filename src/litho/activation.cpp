#include "litho/activation.hpp"

#include <cmath>
#include <stdexcept>

#include "math/grid_ops.hpp"

namespace bismo {
namespace {

constexpr double kHalfPi = 1.5707963267948966192313216916397514;

double cosine_act(double x) {
  const double t = std::clamp(x, -1.0, 1.0);
  return 0.5 * (1.0 + std::sin(t * kHalfPi));
}

double cosine_act_derivative(double x) {
  if (x <= -1.0 || x >= 1.0) return 0.0;  // saturated: zero gradient
  return 0.5 * kHalfPi * std::cos(x * kHalfPi);
}

}  // namespace

RealGrid activate_mask(const RealGrid& theta_m, const ActivationConfig& cfg) {
  if (cfg.kind == ActivationKind::kSigmoid) {
    return sigmoid_activation(theta_m, cfg.alpha_mask);
  }
  return map(theta_m,
             [&cfg](double x) { return cosine_act(cfg.alpha_mask * x); });
}

RealGrid mask_activation_derivative(const RealGrid& theta_m,
                                    const RealGrid& mask,
                                    const ActivationConfig& cfg) {
  if (!theta_m.same_shape(mask)) {
    throw std::invalid_argument("mask_activation_derivative: shape mismatch");
  }
  if (cfg.kind == ActivationKind::kSigmoid) {
    return map(mask, [&cfg](double m) {
      return cfg.alpha_mask * sigmoid_derivative_from_output(m);
    });
  }
  return map(theta_m, [&cfg](double x) {
    return cfg.alpha_mask * cosine_act_derivative(cfg.alpha_mask * x);
  });
}

RealGrid activate_source(const RealGrid& theta_j,
                         const SourceGeometry& geometry,
                         const ActivationConfig& cfg) {
  if (theta_j.rows() != geometry.dim() || theta_j.cols() != geometry.dim()) {
    throw std::invalid_argument("activate_source: shape mismatch");
  }
  RealGrid j = cfg.kind == ActivationKind::kSigmoid
                   ? sigmoid_activation(theta_j, cfg.alpha_source)
                   : map(theta_j, [&cfg](double x) {
                       return cosine_act(cfg.alpha_source * x);
                     });
  j *= geometry.validity_mask();
  return j;
}

RealGrid source_activation_derivative(const RealGrid& theta_j,
                                      const RealGrid& source,
                                      const SourceGeometry& geometry,
                                      const ActivationConfig& cfg) {
  if (!theta_j.same_shape(source)) {
    throw std::invalid_argument(
        "source_activation_derivative: shape mismatch");
  }
  RealGrid d(theta_j.rows(), theta_j.cols(), 0.0);
  if (cfg.kind == ActivationKind::kSigmoid) {
    for (std::size_t i = 0; i < d.size(); ++i) {
      d[i] = cfg.alpha_source * sigmoid_derivative_from_output(source[i]);
    }
  } else {
    for (std::size_t i = 0; i < d.size(); ++i) {
      d[i] = cfg.alpha_source *
             cosine_act_derivative(cfg.alpha_source * theta_j[i]);
    }
  }
  d *= geometry.validity_mask();
  return d;
}

RealGrid init_mask_params(const RealGrid& target,
                          const ActivationConfig& cfg) {
  return map(target, [&cfg](double t) {
    return t > 0.5 ? cfg.mask_init : -cfg.mask_init;
  });
}

RealGrid init_source_params(const RealGrid& j0, const ActivationConfig& cfg) {
  return map(j0, [&cfg](double j) {
    return j > 0.5 ? cfg.source_init : -cfg.source_init;
  });
}

}  // namespace bismo
