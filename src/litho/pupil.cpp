#include "litho/pupil.hpp"

#include <cmath>

#include "fft/fft.hpp"

namespace bismo {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
}

Pupil::Pupil(const OpticsConfig& optics) : optics_(optics) {
  optics_.validate();
  const double fc = optics_.cutoff_frequency();
  cutoff_sq_ = fc * fc;
  has_defocus_ = optics_.defocus_nm != 0.0;
}

bool Pupil::passes(double fx, double fy) const {
  return fx * fx + fy * fy <= cutoff_sq_;
}

std::complex<double> Pupil::value(double fx, double fy) const {
  if (!passes(fx, fy)) return {0.0, 0.0};
  if (!has_defocus_) return {1.0, 0.0};
  // Defocus phase: 2*pi/lambda * dz * (sqrt(1 - (lambda f)^2) - 1).
  // (lambda*f)^2 <= (NA)^2 <= ... can exceed 1 for immersion NA > 1; clamp
  // the square root argument (evanescent components carry zero phase slope).
  const double lf2 =
      (fx * fx + fy * fy) * optics_.wavelength_nm * optics_.wavelength_nm;
  const double root = std::sqrt(std::max(0.0, 1.0 - lf2));
  const double phase =
      kTwoPi / optics_.wavelength_nm * optics_.defocus_nm * (root - 1.0);
  return {std::cos(phase), std::sin(phase)};
}

PassBand Pupil::shifted_passband(double fsx, double fsy) const {
  PassBand band;
  const std::size_t n = optics_.mask_dim;
  const double pitch = optics_.freq_pitch();
  // Conservative bound on how many bins the shifted disc can span keeps the
  // scan window small instead of walking all Nm^2 bins.
  const double fc = optics_.cutoff_frequency();
  const auto max_bin = static_cast<long>(std::ceil((fc + std::hypot(fsx, fsy)) / pitch)) + 1;

  std::vector<std::complex<double>> values;
  bool any_nonunit = false;
  for (std::size_t r = 0; r < n; ++r) {
    const long ky = fft_freq_index(r, n);
    if (std::labs(ky) > max_bin) continue;
    const double fy = static_cast<double>(ky) * pitch;
    for (std::size_t c = 0; c < n; ++c) {
      const long kx = fft_freq_index(c, n);
      if (std::labs(kx) > max_bin) continue;
      const double fx = static_cast<double>(kx) * pitch;
      const std::complex<double> h = value(fx + fsx, fy + fsy);
      if (h == std::complex<double>{}) continue;
      band.indices.push_back(static_cast<std::uint32_t>(r * n + c));
      values.push_back(h);
      if (h != std::complex<double>{1.0, 0.0}) any_nonunit = true;
    }
  }
  if (any_nonunit) band.values = std::move(values);
  return band;
}

ComplexGrid Pupil::dense() const {
  const std::size_t n = optics_.mask_dim;
  const double pitch = optics_.freq_pitch();
  ComplexGrid h(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    const double fy = static_cast<double>(fft_freq_index(r, n)) * pitch;
    for (std::size_t c = 0; c < n; ++c) {
      const double fx = static_cast<double>(fft_freq_index(c, n)) * pitch;
      h(r, c) = value(fx, fy);
    }
  }
  return h;
}

}  // namespace bismo
