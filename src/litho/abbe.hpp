// Abbe forward imaging engine (paper Eq. 2):
//
//   I(x, y) = (1/W) * sum_sigma j_sigma |A_sigma(x, y)|^2,
//   A_sigma = IFFT[ H(f + f_sigma, g + g_sigma) * O(f, g) ],  W = sum j_sigma
//
// where O = FFT(mask) and each source point's shifted pupil pass-band is
// precomputed as a sparse bin list (exact; see Pupil::shifted_passband).
// The normalization by total source power W pins the clear-field intensity
// to 1.0 so a fixed resist threshold is meaningful while the source is being
// optimized (documented substitution; Eq. 2 as printed is unnormalized).
//
// Source-point contributions are independent, so the engine evaluates them
// on a thread pool -- the CPU analogue of the paper's GPU acceleration whose
// runtime model is ceil(sigma/P) (Sec. 3.1).  The engine implements the
// unified `sim::ImagingModel` interface: every pooled pass runs through
// per-slot `sim::SimWorkspace` scratch (preplanned FFTs, preallocated
// buffers, pass-band row skipping), so steady-state evaluation performs no
// heap allocations and no plan-cache lock acquisitions.
#ifndef BISMO_LITHO_ABBE_HPP
#define BISMO_LITHO_ABBE_HPP

#include <cstddef>
#include <memory>
#include <vector>

#include "litho/optics.hpp"
#include "litho/pupil.hpp"
#include "litho/source.hpp"
#include "math/grid2d.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/imaging_model.hpp"

namespace bismo {

/// Aerial image plus the bookkeeping the gradients need.
struct AbbeAerial {
  RealGrid intensity;        ///< normalized intensity I (clear field = 1)
  double total_weight = 0.0; ///< W = sum of source weights over valid points
};

/// Abbe source-points-integration imaging engine.
///
/// Construction precomputes one sparse shifted pass-band (plus its occupied-
/// row list) per valid source point; `aerial` and the gradient engine then
/// reuse them for every forward/backward evaluation.  The engine's model
/// state is immutable after construction; the shared workspace set is the
/// only mutable state and follows the thread pool's one-dispatch-at-a-time
/// contract.
class AbbeImaging : public sim::ImagingModel {
 public:
  /// Build for the given optics and source geometry.  `pool` may be null
  /// (serial execution); the pool is borrowed, not owned.  `workspaces` may
  /// be shared with other engines evaluating the same problem (null = a
  /// fresh set owned by this engine).
  AbbeImaging(const OpticsConfig& optics, const SourceGeometry& geometry,
              ThreadPool* pool = nullptr,
              std::shared_ptr<sim::WorkspaceSet> workspaces = nullptr);

  /// Forward imaging: aerial intensity for mask spectrum `o` (= fft2 of the
  /// activated, dose-scaled mask) and source magnitudes `j` (Nj x Nj grid).
  /// Points with weight <= `cutoff` are skipped (they contribute nothing to
  /// the sum); pass cutoff < 0 to force evaluation of every valid point.
  AbbeAerial aerial(const ComplexGrid& o, const RealGrid& j,
                    double cutoff = 1e-9) const;

  /// Coherent field A_sigma for one source point (by index into
  /// `geometry().points()`), i.e. IFFT of the pass-band-masked spectrum.
  /// Allocating reference path; hot loops use `field_into`.
  ComplexGrid field(const ComplexGrid& o, std::size_t point_index) const;

  /// Out-param variant: writes the field into `out` (resized on first
  /// use, reused afterwards), so the per-call grid allocation is gone.
  /// The transform itself still runs through the convenience `ifft2`
  /// (one internal scratch allocation per call); hot loops use
  /// `field_into`, which is fully allocation-free via the workspace.
  void field(const ComplexGrid& o, std::size_t point_index,
             ComplexGrid& out) const;

  /// Sparse pass-band of one source point.
  const PassBand& passband(std::size_t point_index) const {
    return passbands_[point_index];
  }

  const SourceGeometry& geometry() const noexcept { return geometry_; }
  const OpticsConfig& optics() const noexcept { return optics_; }
  const Pupil& pupil() const noexcept { return pupil_; }

  /// Apply a pass-band mask to a spectrum: out = H_sigma .* o (dense out).
  ComplexGrid apply_passband(const ComplexGrid& o,
                             std::size_t point_index) const;

  /// Scratch-reusing variant of `apply_passband`: `out` is resized to the
  /// spectrum shape on first use and reused afterwards; the band product
  /// runs through the vectorized kernel layer over contiguous bin runs.
  void apply_passband(const ComplexGrid& o, std::size_t point_index,
                      ComplexGrid& out) const;

  // ---- sim::ImagingModel ----
  std::size_t grid_dim() const noexcept override { return optics_.mask_dim; }
  std::size_t components() const noexcept override {
    return passbands_.size();
  }
  sim::BandRef component_band(std::size_t c) const override;
  ThreadPool* pool() const noexcept override { return pool_; }
  sim::WorkspaceSet& workspaces() const override { return *workspaces_; }

  /// The shared workspace set, for engines layered on this model.
  const std::shared_ptr<sim::WorkspaceSet>& workspace_set() const noexcept {
    return workspaces_;
  }

 private:
  OpticsConfig optics_;
  SourceGeometry geometry_;
  Pupil pupil_;
  std::vector<PassBand> passbands_;  ///< parallel to geometry_.points()
  /// Sorted occupied grid rows per pass-band (the row-skip lists).
  std::vector<std::vector<std::uint32_t>> band_rows_;
  ThreadPool* pool_;
  std::shared_ptr<sim::WorkspaceSet> workspaces_;
};

}  // namespace bismo

#endif  // BISMO_LITHO_ABBE_HPP
