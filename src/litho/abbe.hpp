// Abbe forward imaging engine (paper Eq. 2):
//
//   I(x, y) = (1/W) * sum_sigma j_sigma |A_sigma(x, y)|^2,
//   A_sigma = IFFT[ H(f + f_sigma, g + g_sigma) * O(f, g) ],  W = sum j_sigma
//
// where O = FFT(mask) and each source point's shifted pupil pass-band is
// precomputed as a sparse bin list (exact; see Pupil::shifted_passband).
// The normalization by total source power W pins the clear-field intensity
// to 1.0 so a fixed resist threshold is meaningful while the source is being
// optimized (documented substitution; Eq. 2 as printed is unnormalized).
//
// Source-point contributions are independent, so the engine evaluates them
// on a thread pool -- the CPU analogue of the paper's GPU acceleration whose
// runtime model is ceil(sigma/P) (Sec. 3.1).
#ifndef BISMO_LITHO_ABBE_HPP
#define BISMO_LITHO_ABBE_HPP

#include <cstddef>
#include <vector>

#include "litho/optics.hpp"
#include "litho/pupil.hpp"
#include "litho/source.hpp"
#include "math/grid2d.hpp"
#include "parallel/thread_pool.hpp"

namespace bismo {

/// Aerial image plus the bookkeeping the gradients need.
struct AbbeAerial {
  RealGrid intensity;        ///< normalized intensity I (clear field = 1)
  double total_weight = 0.0; ///< W = sum of source weights over valid points
};

/// Abbe source-points-integration imaging engine.
///
/// Construction precomputes one sparse shifted pass-band per valid source
/// point; `aerial` and the gradient engine then reuse them for every
/// forward/backward evaluation.  The engine is immutable after construction
/// and safe to share across threads.
class AbbeImaging {
 public:
  /// Build for the given optics and source geometry.  `pool` may be null
  /// (serial execution); the pool is borrowed, not owned.
  AbbeImaging(const OpticsConfig& optics, const SourceGeometry& geometry,
              ThreadPool* pool = nullptr);

  /// Forward imaging: aerial intensity for mask spectrum `o` (= fft2 of the
  /// activated, dose-scaled mask) and source magnitudes `j` (Nj x Nj grid).
  /// Points with weight <= `cutoff` are skipped (they contribute nothing to
  /// the sum); pass cutoff < 0 to force evaluation of every valid point.
  AbbeAerial aerial(const ComplexGrid& o, const RealGrid& j,
                    double cutoff = 1e-9) const;

  /// Coherent field A_sigma for one source point (by index into
  /// `geometry().points()`), i.e. IFFT of the pass-band-masked spectrum.
  ComplexGrid field(const ComplexGrid& o, std::size_t point_index) const;

  /// Sparse pass-band of one source point.
  const PassBand& passband(std::size_t point_index) const {
    return passbands_[point_index];
  }

  const SourceGeometry& geometry() const noexcept { return geometry_; }
  const OpticsConfig& optics() const noexcept { return optics_; }
  const Pupil& pupil() const noexcept { return pupil_; }
  ThreadPool* pool() const noexcept { return pool_; }

  /// Apply a pass-band mask to a spectrum: out = H_sigma .* o (dense out).
  ComplexGrid apply_passband(const ComplexGrid& o,
                             std::size_t point_index) const;

 private:
  OpticsConfig optics_;
  SourceGeometry geometry_;
  Pupil pupil_;
  std::vector<PassBand> passbands_;  ///< parallel to geometry_.points()
  ThreadPool* pool_;
};

}  // namespace bismo

#endif  // BISMO_LITHO_ABBE_HPP
