// Constant-threshold resist model with sigmoid smoothing (paper Eq. 6):
//   Z = sigmoid(beta * (I - I_tr))
// which keeps the print model differentiable for gradient-based SMO.
#ifndef BISMO_LITHO_RESIST_HPP
#define BISMO_LITHO_RESIST_HPP

#include "fft/kernels/kernel.hpp"
#include "math/grid2d.hpp"
#include "math/grid_ops.hpp"

namespace bismo {

/// Sigmoid threshold resist (Eq. 6).
struct ResistModel {
  double beta = 30.0;        ///< sigmoid steepness (paper Sec. 4: beta = 30)
  double threshold = 0.225;  ///< I_tr, the standard ILT print threshold
                             ///< (clear-field intensity normalized to 1.0)

  /// Continuous resist image Z from aerial intensity I, as one vectorized
  /// sigmoid pass through the active SIMD kernel.
  RealGrid apply(const RealGrid& intensity) const {
    RealGrid z(intensity.rows(), intensity.cols());
    fft::active_kernel().sigmoid(z.data(), intensity.data(), intensity.size(),
                                 beta, threshold);
    return z;
  }

  /// dZ/dI evaluated from the already-computed resist image.
  RealGrid derivative_from_output(const RealGrid& z) const {
    return map(z, [this](double s) { return beta * s * (1.0 - s); });
  }

  /// Hard-thresholded binary print (for metrics): I > threshold.
  RealGrid print(const RealGrid& intensity) const {
    return map(intensity,
               [this](double i) { return i > threshold ? 1.0 : 0.0; });
  }
};

}  // namespace bismo

#endif  // BISMO_LITHO_RESIST_HPP
