// Illumination source representation (paper Sec. 3.1).
//
// The pixelated freeform source lives on an Nj x Nj grid spanning the
// sigma-disc (normalized pupil-fill coordinates sigma in [-1, 1]^2, points
// outside the unit disc are non-physical and excluded).  Each grid point
// (fsx, fsy) = sigma * NA / lambda is one Abbe source point.  Parametric
// templates (annular / dipole / quasar / conventional) provide the initial
// shapes J0 characterized by outer/inner radii sigma_o, sigma_i.
#ifndef BISMO_LITHO_SOURCE_HPP
#define BISMO_LITHO_SOURCE_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "litho/optics.hpp"
#include "math/grid2d.hpp"

namespace bismo {

/// One sampling point of the pixelated source.
struct SourcePoint {
  std::size_t row = 0;   ///< row in the Nj x Nj source grid
  std::size_t col = 0;   ///< column in the Nj x Nj source grid
  double sigma_x = 0.0;  ///< normalized pupil-fill coordinate
  double sigma_y = 0.0;
  double freq_x = 0.0;   ///< frequency offset f_sigma (cycles/nm)
  double freq_y = 0.0;
};

/// Geometry of the source sampling grid: where each source pixel sits in
/// sigma space and frequency space.  Fixed for a given (Nj, optics); the
/// optimizable quantity is the per-point magnitude grid J.
class SourceGeometry {
 public:
  /// Build an Nj x Nj sigma-grid for the given optics.  Nj must be >= 2.
  SourceGeometry(std::size_t nj, const OpticsConfig& optics);

  /// Source grid dimension Nj.
  std::size_t dim() const noexcept { return nj_; }

  /// All physically valid source points (|sigma| <= 1), row-major order.
  const std::vector<SourcePoint>& points() const noexcept { return points_; }

  /// True when source pixel (r, c) lies inside the unit sigma-disc.
  bool valid(std::size_t r, std::size_t c) const {
    return valid_(r, c) > 0.5;
  }

  /// 0/1 validity mask over the Nj x Nj grid.
  const RealGrid& validity_mask() const noexcept { return valid_; }

  /// Sigma coordinate of a grid index along either axis.
  double sigma_of(std::size_t idx) const;

 private:
  std::size_t nj_;
  double na_over_lambda_;
  std::vector<SourcePoint> points_;
  RealGrid valid_;
};

/// Parametric source template kinds.
enum class SourceShape {
  kAnnular,       ///< sigma_i <= |sigma| <= sigma_o
  kConventional,  ///< |sigma| <= sigma_o (disc)
  kDipoleX,       ///< annular restricted to poles on the x axis
  kDipoleY,       ///< annular restricted to poles on the y axis
  kQuasar,        ///< annular restricted to four diagonal poles
  kPoint,         ///< single on-axis point (coherent illumination)
};

/// Parameters of a template; opening_deg is the angular half-width of each
/// pole for dipole/quasar shapes.
struct SourceSpec {
  SourceShape shape = SourceShape::kAnnular;
  double sigma_out = 0.95;  ///< paper Sec. 4: sigma_o = 0.95
  double sigma_in = 0.63;   ///< paper Sec. 4: sigma_i = 0.63
  double opening_deg = 45.0;
};

/// Render a template to a binary {0,1} magnitude grid over the geometry
/// (invalid points are always 0).
RealGrid make_source(const SourceGeometry& geometry, const SourceSpec& spec);

/// Human-readable name of a shape (for logs and bench output).
std::string to_string(SourceShape shape);

/// Total source power sum_sigma j_sigma over valid points.
double source_power(const SourceGeometry& geometry, const RealGrid& source);

/// Number of effective source points (j_sigma > cutoff) -- the sigma count
/// in the paper's Abbe/Hopkins complexity ratio (Sec. 3.1).
std::size_t effective_point_count(const SourceGeometry& geometry,
                                  const RealGrid& source,
                                  double cutoff = 1e-6);

}  // namespace bismo

#endif  // BISMO_LITHO_SOURCE_HPP
