// Optical configuration of the projection system (paper Sec. 2.1 / Sec. 4):
// 193 nm immersion illumination, NA = 1.35, square mask tiles.
//
// All physical lengths are in nanometres; frequencies in cycles/nm.  The
// mask is an Nm x Nm pixel grid covering a tile of Nm * pixel_nm per side;
// its DFT samples frequencies on a grid of pitch 1 / (Nm * pixel_nm).
#ifndef BISMO_LITHO_OPTICS_HPP
#define BISMO_LITHO_OPTICS_HPP

#include <cstddef>
#include <stdexcept>
#include <string>

namespace bismo {

/// Projection-system and discretization parameters.
struct OpticsConfig {
  double wavelength_nm = 193.0;  ///< illumination wavelength (lambda)
  double na = 1.35;              ///< numerical aperture
  std::size_t mask_dim = 256;    ///< Nm: mask grid is mask_dim x mask_dim
  double pixel_nm = 4.0;         ///< mask pixel pitch on the wafer plane
  double defocus_nm = 0.0;       ///< defocus aberration (0 = nominal focus)

  /// Pupil cut-off frequency NA / lambda (Eq. 5), cycles/nm.
  double cutoff_frequency() const noexcept { return na / wavelength_nm; }

  /// Frequency-grid pitch 1 / (Nm * pixel) in cycles/nm.
  double freq_pitch() const noexcept {
    return 1.0 / (static_cast<double>(mask_dim) * pixel_nm);
  }

  /// Pupil cut-off radius measured in frequency-grid bins.
  double cutoff_bins() const noexcept {
    return cutoff_frequency() / freq_pitch();
  }

  /// Physical tile side length in nm.
  double tile_nm() const noexcept {
    return static_cast<double>(mask_dim) * pixel_nm;
  }

  /// Validate the configuration; throws std::invalid_argument when the
  /// sampling cannot represent the doubled pupil band (|f| <= 2 NA/lambda
  /// must fit below Nyquist, i.e. pixel_nm <= lambda / (4 NA)).
  void validate() const {
    if (wavelength_nm <= 0) {
      throw std::invalid_argument("OpticsConfig: wavelength_nm = " +
                                  std::to_string(wavelength_nm) +
                                  " invalid (must be positive)");
    }
    if (na <= 0) {
      throw std::invalid_argument("OpticsConfig: na = " + std::to_string(na) +
                                  " invalid (must be positive)");
    }
    if (pixel_nm <= 0) {
      throw std::invalid_argument("OpticsConfig: pixel_nm = " +
                                  std::to_string(pixel_nm) +
                                  " invalid (must be positive)");
    }
    if (mask_dim < 8) {
      throw std::invalid_argument("OpticsConfig: mask_dim = " +
                                  std::to_string(mask_dim) +
                                  " invalid (need >= 8)");
    }
    const double nyquist = 1.0 / (2.0 * pixel_nm);
    if (2.0 * cutoff_frequency() > nyquist) {
      throw std::invalid_argument(
          "OpticsConfig: pixel_nm = " + std::to_string(pixel_nm) +
          " too coarse for the shifted pupil band (need pixel_nm <= lambda /"
          " (4 NA) = " +
          std::to_string(wavelength_nm / (4.0 * na)) + " nm)");
    }
  }
};

/// Exposure dose corners for process-window evaluation (paper Eq. 8 uses a
/// +/-2 % dose range: d_min = 0.98, d_max = 1.02).
struct ProcessWindow {
  double dose_min = 0.98;
  double dose_max = 1.02;
};

/// A single process condition: the dose factor applied to the activated
/// mask (M_cond = dose * M), nominal being 1.0.
enum class DoseCorner { kNominal, kMin, kMax };

/// Dose factor for a corner under the given window.
inline double dose_factor(DoseCorner corner, const ProcessWindow& pw) {
  switch (corner) {
    case DoseCorner::kNominal:
      return 1.0;
    case DoseCorner::kMin:
      return pw.dose_min;
    case DoseCorner::kMax:
      return pw.dose_max;
  }
  throw std::invalid_argument("dose_factor: bad corner");
}

}  // namespace bismo

#endif  // BISMO_LITHO_OPTICS_HPP
