// First-order optimizers over Grid2D<double> parameters: plain gradient
// descent (the paper's Alg. 2 update lines) and Adam (the "// Or Adam"
// alternative the paper notes for both levels).
#ifndef BISMO_OPT_OPTIMIZER_HPP
#define BISMO_OPT_OPTIMIZER_HPP

#include <memory>

#include "math/grid2d.hpp"

namespace bismo {

/// Interface: stateful per-parameter-grid update rule.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Apply one update in place: params <- params - step(grad).
  virtual void step(RealGrid& params, const RealGrid& grad) = 0;

  /// Forget accumulated state (moments, step counter).
  virtual void reset() = 0;

  /// The configured learning rate.
  virtual double learning_rate() const = 0;
};

/// Plain (steepest-descent) SGD: params -= lr * grad.
class SgdOptimizer final : public Optimizer {
 public:
  explicit SgdOptimizer(double lr) : lr_(lr) {}
  void step(RealGrid& params, const RealGrid& grad) override;
  void reset() override {}
  double learning_rate() const override { return lr_; }

 private:
  double lr_;
};

/// Adam (Kingma & Ba) with bias correction.
class AdamOptimizer final : public Optimizer {
 public:
  explicit AdamOptimizer(double lr, double beta1 = 0.9, double beta2 = 0.999,
                         double eps = 1e-8)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}
  void step(RealGrid& params, const RealGrid& grad) override;
  void reset() override;
  double learning_rate() const override { return lr_; }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  RealGrid m_;
  RealGrid v_;
  long t_ = 0;
};

/// Optimizer kinds for configuration structs.
enum class OptimizerKind { kSgd, kAdam };

/// Factory.
std::unique_ptr<Optimizer> make_optimizer(OptimizerKind kind, double lr);

}  // namespace bismo

#endif  // BISMO_OPT_OPTIMIZER_HPP
