#include "opt/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace bismo {

void SgdOptimizer::step(RealGrid& params, const RealGrid& grad) {
  if (!params.same_shape(grad)) {
    throw std::invalid_argument("SgdOptimizer::step: shape mismatch");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i] -= lr_ * grad[i];
  }
}

void AdamOptimizer::step(RealGrid& params, const RealGrid& grad) {
  if (!params.same_shape(grad)) {
    throw std::invalid_argument("AdamOptimizer::step: shape mismatch");
  }
  if (m_.size() != params.size()) {
    m_ = RealGrid(params.rows(), params.cols(), 0.0);
    v_ = RealGrid(params.rows(), params.cols(), 0.0);
    t_ = 0;
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grad[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grad[i] * grad[i];
    const double mhat = m_[i] / bc1;
    const double vhat = v_[i] / bc2;
    params[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
  }
}

void AdamOptimizer::reset() {
  m_ = RealGrid();
  v_ = RealGrid();
  t_ = 0;
}

std::unique_ptr<Optimizer> make_optimizer(OptimizerKind kind, double lr) {
  switch (kind) {
    case OptimizerKind::kSgd:
      return std::make_unique<SgdOptimizer>(lr);
    case OptimizerKind::kAdam:
      return std::make_unique<AdamOptimizer>(lr);
  }
  throw std::invalid_argument("make_optimizer: bad kind");
}

}  // namespace bismo
