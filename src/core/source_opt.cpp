#include "core/source_opt.hpp"

#include <chrono>

namespace bismo {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

RunResult run_source_opt(const SmoProblem& problem, const RealGrid& theta_m,
                         const SoOptions& options,
                         const RunControl& control) {
  const auto start = Clock::now();
  const LossWeights& w = problem.config().weights;
  RunResult result;
  result.method = "SO";
  result.theta_m = theta_m;

  RealGrid theta_j = problem.initial_theta_j();
  auto opt = make_optimizer(options.optimizer, options.lr);
  PlateauDetector plateau(options.stop);

  GradRequest req;
  req.mask = false;
  req.source = true;
  for (int step = 0; step < options.steps; ++step) {
    if (control.stop_requested()) {
      result.cancelled = true;
      break;
    }
    const SmoGradient g =
        problem.engine().evaluate(theta_m, theta_j, req);
    ++result.gradient_evaluations;
    const double loss = w.gamma * g.l2 + w.eta * g.pvb;
    result.trace.push_back({step, loss, g.l2, g.pvb, elapsed_seconds(start)});
    control.notify(result.trace.back());
    opt->step(theta_j, g.grad_theta_j);
    if (plateau.should_stop(loss)) break;
  }
  result.theta_j = std::move(theta_j);
  result.wall_seconds = elapsed_seconds(start);
  return result;
}

RunResult run_source_opt(const SmoProblem& problem, const SoOptions& options,
                         const RunControl& control) {
  return run_source_opt(problem, problem.initial_theta_m(), options, control);
}

}  // namespace bismo
