// Central configuration for SMO runs: optics, activations, loss weights,
// learning rates, bilevel hyperparameters, iteration budgets.
//
// Defaults mirror the paper's Sec. 4 settings wherever they are
// CPU-feasible: gamma=1000, eta=3000, lambda=193, NA=1.35, sigma_o=0.95,
// sigma_i=0.63, Q=24, alpha_m=9, m0=1, alpha_j=2, j0=5, beta=30,
// xi=xi_M=xi_J=0.1, K=5, T=3.  The grid sizes are scaled down from the
// paper's Nj=35 / Nm=2048 (RTX 4090) to Nj=11 / Nm=256 defaults; both are
// plain knobs and every bench prints what it used.
#ifndef BISMO_CORE_CONFIG_HPP
#define BISMO_CORE_CONFIG_HPP

#include <cstddef>

#include "grad/loss.hpp"
#include "litho/activation.hpp"
#include "litho/optics.hpp"
#include "litho/resist.hpp"
#include "litho/source.hpp"
#include "metrics/epe.hpp"
#include "opt/optimizer.hpp"

namespace bismo {

/// Everything needed to set up and run any of the SMO methods.
struct SmoConfig {
  OpticsConfig optics{193.0, 1.35, 256, 8.0, 0.0};  ///< 2048 nm tile default
  std::size_t source_dim = 11;                      ///< Nj (paper: 35)
  SourceSpec initial_source{};                      ///< annular 0.95 / 0.63
  ActivationConfig activation{};                    ///< Table 1 defaults
  ResistModel resist{};                             ///< beta = 30
  LossWeights weights{};                            ///< gamma=1000, eta=3000
  ProcessWindow process_window{};                   ///< +/- 2% dose
  EpeConfig epe{};                                  ///< 15 nm constraint

  OptimizerKind optimizer = OptimizerKind::kAdam;  ///< outer updates
  double lr_mask = 0.1;    ///< xi_M
  double lr_source = 0.1;  ///< xi_J (also the inner unroll step size)

  // Bilevel hyperparameters (Algorithm 2).
  int unroll_steps = 3;           ///< T: inner SO steps per outer step
  int hyper_terms = 5;            ///< K: Neumann terms / CG iterations
  double cg_damping = 0.0;        ///< Tikhonov damping for BiSMO-CG
  double fd_eps_scale = 1e-2;     ///< finite-difference probe magnitude

  // Iteration budgets.
  int outer_steps = 40;   ///< BiSMO outer iterations / MO-only steps
  int am_cycles = 4;      ///< AM-SMO alternation cycles
  int am_so_steps = 10;   ///< SO steps per AM cycle ("until converged")
  int am_mo_steps = 10;   ///< MO steps per AM cycle

  std::size_t socs_kernels = 24;  ///< Q for Hopkins baselines
  double source_cutoff = 1e-9;    ///< forward skip threshold for j_sigma

  /// Sanity-check the composite configuration.
  void validate() const;
};

}  // namespace bismo

#endif  // BISMO_CORE_CONFIG_HPP
