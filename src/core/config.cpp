#include "core/config.hpp"

#include <sstream>
#include <stdexcept>

namespace bismo {
namespace {

/// Uniform "field = value" diagnostic so callers (CLI, api::Session) can
/// print configuration mistakes as one-line errors naming the knob.
template <typename T>
[[noreturn]] void reject(const char* field, T value, const char* requirement) {
  std::ostringstream ss;
  ss << "SmoConfig: " << field << " = " << value << " invalid ("
     << requirement << ")";
  throw std::invalid_argument(ss.str());
}

}  // namespace

void SmoConfig::validate() const {
  optics.validate();
  if (source_dim < 2) {
    reject("source_dim", source_dim, "need >= 2");
  }
  if (lr_mask <= 0.0) {
    reject("lr_mask", lr_mask, "learning rate must be positive");
  }
  if (lr_source <= 0.0) {
    reject("lr_source", lr_source, "learning rate must be positive");
  }
  if (unroll_steps < 0) {
    reject("unroll_steps", unroll_steps, "bilevel budget must be >= 0");
  }
  if (hyper_terms < 0) {
    reject("hyper_terms", hyper_terms, "bilevel budget must be >= 0");
  }
  if (outer_steps <= 0) {
    reject("outer_steps", outer_steps, "iteration budget must be positive");
  }
  if (am_cycles <= 0) {
    reject("am_cycles", am_cycles, "iteration budget must be positive");
  }
  if (am_so_steps <= 0) {
    reject("am_so_steps", am_so_steps, "iteration budget must be positive");
  }
  if (am_mo_steps <= 0) {
    reject("am_mo_steps", am_mo_steps, "iteration budget must be positive");
  }
  if (socs_kernels == 0) {
    reject("socs_kernels", socs_kernels, "need >= 1");
  }
  if (weights.gamma < 0.0) {
    reject("weights.gamma", weights.gamma, "loss weight must be >= 0");
  }
  if (weights.eta < 0.0) {
    reject("weights.eta", weights.eta, "loss weight must be >= 0");
  }
}

}  // namespace bismo
