#include "core/config.hpp"

#include <stdexcept>

namespace bismo {

void SmoConfig::validate() const {
  optics.validate();
  if (source_dim < 2) {
    throw std::invalid_argument("SmoConfig: source_dim must be >= 2");
  }
  if (lr_mask <= 0.0 || lr_source <= 0.0) {
    throw std::invalid_argument("SmoConfig: learning rates must be positive");
  }
  if (unroll_steps < 0 || hyper_terms < 0) {
    throw std::invalid_argument("SmoConfig: negative bilevel budgets");
  }
  if (outer_steps <= 0 || am_cycles <= 0 || am_so_steps <= 0 ||
      am_mo_steps <= 0) {
    throw std::invalid_argument("SmoConfig: iteration budgets must be positive");
  }
  if (socs_kernels == 0) {
    throw std::invalid_argument("SmoConfig: socs_kernels must be >= 1");
  }
  if (weights.gamma < 0.0 || weights.eta < 0.0) {
    throw std::invalid_argument("SmoConfig: negative loss weights");
  }
}

}  // namespace bismo
