// Mask-only optimization (MO) drivers -- the baselines of Tables 3-4:
//
//   * run_abbe_mo     -- the paper's own Abbe-MO: exact Abbe imaging with
//                        PVB-aware loss, source fixed at its template.
//   * run_hopkins_mo  -- Hopkins/SOCS ILT.  With `levels == 1`, few kernels
//                        and no PVB term this is the NILT [7] proxy; with
//                        coarse-to-fine levels, Q = 24 and the PVB term it
//                        is the DAC23-MILT [10] proxy (multi-level
//                        lithography simulation).  See DESIGN.md
//                        "Substitutions" for why proxies stand in for the
//                        closed-source baselines.
#ifndef BISMO_CORE_MASK_OPT_HPP
#define BISMO_CORE_MASK_OPT_HPP

#include <cstddef>

#include "core/problem.hpp"
#include "core/run_control.hpp"
#include "core/stop.hpp"
#include "core/trace.hpp"

namespace bismo {

/// Options for mask-only drivers.
struct MoOptions {
  int steps = 40;                                  ///< optimizer iterations
  OptimizerKind optimizer = OptimizerKind::kAdam;  ///< update rule
  double lr = 0.1;                                 ///< xi_M
  bool use_pvb = true;  ///< false: optimize plain L2 (NILT proxy)
  StopCriteria stop{};  ///< optional plateau-based early stop
};

/// Hopkins-specific additions.
struct HopkinsMoOptions {
  MoOptions base;
  std::size_t kernels = 24;  ///< SOCS truncation Q
  int levels = 1;            ///< 1 = single level; >1 = multi-level ILT
};

/// Abbe-based MO: optimizes theta_M with theta_J frozen at the template.
/// The trace records the full Lsmo (standard weights) for comparability.
RunResult run_abbe_mo(const SmoProblem& problem, const MoOptions& options,
                      const RunControl& control = {});

/// Hopkins-based MO (single or multi-level).  The TCC is built once from
/// the frozen template source.  The returned theta_j is the frozen initial.
RunResult run_hopkins_mo(const SmoProblem& problem,
                         const HopkinsMoOptions& options,
                         const RunControl& control = {});

}  // namespace bismo

#endif  // BISMO_CORE_MASK_OPT_HPP
