#include "core/alloc_guard.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace bismo::core {
namespace {

// Process-wide arm count: interposed operators only pay for counting
// while a guard is alive somewhere.  All orderings are relaxed -- the
// counters are test instrumentation, not synchronization; tests join
// their worker threads (a synchronizing operation) before reading.
std::atomic<int> g_armed{0};
std::atomic<std::size_t> g_global_count{0};
thread_local std::size_t t_thread_count = 0;

inline void count_allocation() noexcept {
#if !defined(BISMO_ALLOC_GUARD_DISABLED)
  if (g_armed.load(std::memory_order_relaxed) > 0) {
    g_global_count.fetch_add(1, std::memory_order_relaxed);
    ++t_thread_count;
  }
#endif
}

}  // namespace

AllocGuard::AllocGuard(Scope scope) : scope_(scope) {
  g_armed.fetch_add(1, std::memory_order_relaxed);
  start_ = scope_ == Scope::kThread
               ? t_thread_count
               : g_global_count.load(std::memory_order_relaxed);
}

AllocGuard::~AllocGuard() {
  g_armed.fetch_sub(1, std::memory_order_relaxed);
}

std::size_t AllocGuard::allocations() const {
  const std::size_t now =
      scope_ == Scope::kThread
          ? t_thread_count
          : g_global_count.load(std::memory_order_relaxed);
  return now - start_;
}

bool AllocGuard::enforced() {
#if defined(BISMO_ALLOC_GUARD_DISABLED)
  return false;
#else
  return true;
#endif
}

}  // namespace bismo::core

#if !defined(BISMO_ALLOC_GUARD_DISABLED)

// Global operator new/delete replacement.  Every form funnels through
// these two helpers; replacement (not overloading) is the one sanctioned
// way to observe all C++ heap traffic without libc hooks.
namespace {

void* guarded_alloc(std::size_t size) noexcept {
  bismo::core::count_allocation();
  // Zero-size new must return a unique pointer.
  return std::malloc(size == 0 ? 1 : size);
}

void* guarded_alloc_aligned(std::size_t size, std::size_t align) noexcept {
  bismo::core::count_allocation();
  void* ptr = nullptr;
  if (align < sizeof(void*)) align = sizeof(void*);
  if (posix_memalign(&ptr, align, size == 0 ? 1 : size) != 0) return nullptr;
  return ptr;
}

}  // namespace

void* operator new(std::size_t size) {
  void* ptr = guarded_alloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size) {
  void* ptr = guarded_alloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return guarded_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return guarded_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* ptr = guarded_alloc_aligned(size, static_cast<std::size_t>(align));
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* ptr = guarded_alloc_aligned(size, static_cast<std::size_t>(align));
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return guarded_alloc_aligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return guarded_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(ptr);
}

#endif  // !BISMO_ALLOC_GUARD_DISABLED
