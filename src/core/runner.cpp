#include "core/runner.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "core/am_smo.hpp"
#include "core/bismo.hpp"
#include "core/mask_opt.hpp"

namespace bismo {
namespace {

std::string lowered(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

/// Short CLI alias for a method (the historical bismo_cli spellings).
std::string method_alias(Method method) {
  switch (method) {
    case Method::kNiltProxy:
      return "nilt";
    case Method::kDac23Proxy:
      return "dac23";
    case Method::kAbbeMo:
      return "abbe-mo";
    case Method::kAmAbbeHopkins:
      return "am-ah";
    case Method::kAmAbbeAbbe:
      return "am-aa";
    case Method::kBismoFd:
      return "bismo-fd";
    case Method::kBismoCg:
      return "bismo-cg";
    case Method::kBismoNmn:
      return "bismo-nmn";
  }
  return "?";
}

}  // namespace

const std::vector<Method>& all_methods() {
  static const std::vector<Method> methods = {
      Method::kNiltProxy,  Method::kDac23Proxy,     Method::kAbbeMo,
      Method::kAmAbbeHopkins, Method::kAmAbbeAbbe,  Method::kBismoFd,
      Method::kBismoCg,    Method::kBismoNmn,
  };
  return methods;
}

std::string to_string(Method method) {
  switch (method) {
    case Method::kNiltProxy:
      return "NILT-proxy";
    case Method::kDac23Proxy:
      return "DAC23-MILT-proxy";
    case Method::kAbbeMo:
      return "Abbe-MO";
    case Method::kAmAbbeHopkins:
      return "AM-SMO(A-H)";
    case Method::kAmAbbeAbbe:
      return "AM-SMO(A-A)";
    case Method::kBismoFd:
      return "BiSMO-FD";
    case Method::kBismoCg:
      return "BiSMO-CG";
    case Method::kBismoNmn:
      return "BiSMO-NMN";
  }
  return "unknown";
}

bool optimizes_source(Method method) {
  switch (method) {
    case Method::kNiltProxy:
    case Method::kDac23Proxy:
    case Method::kAbbeMo:
      return false;
    default:
      return true;
  }
}

Method method_from_string(const std::string& name) {
  const std::string want = lowered(name);
  for (Method m : all_methods()) {
    if (want == lowered(to_string(m)) || want == method_alias(m)) return m;
  }
  std::string known;
  for (Method m : all_methods()) {
    if (!known.empty()) known += ", ";
    known += to_string(m) + " (" + method_alias(m) + ")";
  }
  throw std::invalid_argument("unknown method \"" + name +
                              "\"; expected one of: " + known);
}

DatasetKind dataset_from_string(const std::string& name) {
  const std::string want = lowered(name);
  std::string known;
  for (DatasetKind kind :
       {DatasetKind::kIccad13, DatasetKind::kIccadL, DatasetKind::kIspd19}) {
    if (want == lowered(to_string(kind))) return kind;
    if (!known.empty()) known += ", ";
    known += to_string(kind);
  }
  throw std::invalid_argument("unknown dataset \"" + name +
                              "\"; expected one of: " + known);
}

RunResult run_method(const SmoProblem& problem, Method method,
                     const RunControl& control) {
  const SmoConfig& cfg = problem.config();
  switch (method) {
    case Method::kNiltProxy: {
      // Plain ILT: heavier truncation, no process-window term -- the
      // weakest baseline of Table 3, by design of the original (Hopkins,
      // printability-only objective).
      HopkinsMoOptions opt;
      opt.base.steps = cfg.outer_steps;
      opt.base.optimizer = cfg.optimizer;
      opt.base.lr = cfg.lr_mask;
      opt.base.use_pvb = false;
      opt.kernels = std::max<std::size_t>(1, cfg.socs_kernels / 3);
      opt.levels = 1;
      RunResult r = run_hopkins_mo(problem, opt, control);
      r.method = to_string(method);
      return r;
    }
    case Method::kDac23Proxy: {
      HopkinsMoOptions opt;
      opt.base.steps = cfg.outer_steps;
      opt.base.optimizer = cfg.optimizer;
      opt.base.lr = cfg.lr_mask;
      opt.base.use_pvb = true;
      opt.kernels = cfg.socs_kernels;
      opt.levels = 2;  // the "multi-level" of DAC23-MILT
      RunResult r = run_hopkins_mo(problem, opt, control);
      r.method = to_string(method);
      return r;
    }
    case Method::kAbbeMo: {
      MoOptions opt;
      opt.steps = cfg.outer_steps;
      opt.optimizer = cfg.optimizer;
      opt.lr = cfg.lr_mask;
      opt.use_pvb = true;
      return run_abbe_mo(problem, opt, control);
    }
    case Method::kAmAbbeHopkins:
    case Method::kAmAbbeAbbe: {
      AmOptions opt;
      opt.cycles = cfg.am_cycles;
      opt.so_steps = cfg.am_so_steps;
      opt.mo_steps = cfg.am_mo_steps;
      opt.optimizer = cfg.optimizer;
      opt.lr_mask = cfg.lr_mask;
      opt.lr_source = cfg.lr_source;
      opt.kernels = cfg.socs_kernels;
      const AmMode mode = method == Method::kAmAbbeAbbe
                              ? AmMode::kAbbeAbbe
                              : AmMode::kAbbeHopkins;
      RunResult r = run_am_smo(problem, mode, opt, control);
      r.method = to_string(method);
      return r;
    }
    case Method::kBismoFd:
    case Method::kBismoCg:
    case Method::kBismoNmn: {
      BismoOptions opt;
      opt.outer_steps = cfg.outer_steps;
      opt.unroll_steps = method == Method::kBismoFd ? 1 : cfg.unroll_steps;
      opt.hyper_terms = cfg.hyper_terms;
      opt.outer_optimizer = cfg.optimizer;
      opt.inner_optimizer = cfg.optimizer;
      opt.lr_mask = cfg.lr_mask;
      opt.lr_source = cfg.lr_source;
      opt.cg_damping = cfg.cg_damping;
      opt.fd_eps_scale = cfg.fd_eps_scale;
      BismoVariant variant = BismoVariant::kNmn;
      if (method == Method::kBismoFd) variant = BismoVariant::kFd;
      if (method == Method::kBismoCg) variant = BismoVariant::kCg;
      RunResult r = run_bismo(problem, variant, opt, control);
      r.method = to_string(method);
      return r;
    }
  }
  throw std::invalid_argument("run_method: unknown method");
}

}  // namespace bismo
