// SmoProblem: one clip's complete differentiable SMO instance -- target
// pattern, imaging engines, gradient engine, parameter initialization
// (Table 1), and final-solution metric evaluation (Sec. 2.2).
#ifndef BISMO_CORE_PROBLEM_HPP
#define BISMO_CORE_PROBLEM_HPP

#include <memory>
#include <vector>

#include "core/config.hpp"
#include "grad/abbe_grad.hpp"
#include "layout/layout.hpp"
#include "litho/abbe.hpp"
#include "metrics/epe.hpp"
#include "metrics/solution.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/scenario.hpp"
#include "sim/workspace.hpp"

namespace bismo {

/// One clip's SMO problem instance.  Owns the engines; movable, not
/// copyable (engines hold internal references).
class SmoProblem {
 public:
  /// Build from a prerasterized binary target grid.  `workspaces` lets a
  /// caller (api::Session) share one warm WorkspaceSet across successive
  /// same-shaped problems so later jobs skip buffer allocation and FFT
  /// planning; null means a private set.
  SmoProblem(const SmoConfig& config, RealGrid target,
             ThreadPool* pool = nullptr,
             std::shared_ptr<sim::WorkspaceSet> workspaces = nullptr);

  /// Build from a layout clip (rasterized to the configured mask grid).
  SmoProblem(const SmoConfig& config, const Layout& clip,
             ThreadPool* pool = nullptr,
             std::shared_ptr<sim::WorkspaceSet> workspaces = nullptr);

  SmoProblem(const SmoProblem&) = delete;
  SmoProblem& operator=(const SmoProblem&) = delete;

  const SmoConfig& config() const noexcept { return config_; }
  const RealGrid& target() const noexcept { return target_; }
  const SourceGeometry& geometry() const noexcept { return *geometry_; }
  const AbbeImaging& abbe() const noexcept { return *abbe_; }
  /// The Abbe engine through the unified imaging interface.
  const sim::ImagingModel& imaging() const noexcept { return *abbe_; }
  const AbbeGradientEngine& engine() const noexcept { return *engine_; }
  ThreadPool* pool() const noexcept { return pool_; }

  /// Per-slot workspaces shared by every engine evaluating this problem
  /// (the Abbe engine, AM-SMO's per-cycle Hopkins rebuilds, scenario
  /// batches) so re-built engines reuse warm buffers instead of
  /// reallocating.
  const std::shared_ptr<sim::WorkspaceSet>& workspaces() const noexcept {
    return workspaces_;
  }

  /// Batched process-window evaluation over this problem's optics and
  /// geometry, sharing the pool and workspaces.
  sim::ScenarioBatch scenario_batch(std::vector<sim::Scenario> scenarios) const;

  /// theta_M0 from the target pattern (Table 1).
  RealGrid initial_theta_m() const;

  /// theta_J0 from the configured source template (Table 1).
  RealGrid initial_theta_j() const;

  /// Normalized nominal-dose aerial intensity for the given parameters
  /// (mask binarized when `binary_mask`) -- the input of both the resist
  /// model and the metric evaluation, exposed so the tiled execution layer
  /// can stitch intensities before thresholding.
  RealGrid aerial_image(const RealGrid& theta_m, const RealGrid& theta_j,
                        bool binary_mask = true) const;

  /// Continuous resist image at a dose corner for the given parameters
  /// (mask binarized when `binary_mask`).
  RealGrid resist_image(const RealGrid& theta_m, const RealGrid& theta_j,
                        DoseCorner corner, bool binary_mask = true) const;

  /// Evaluate the paper's metrics for a solution (binarized mask).
  SolutionMetrics evaluate_solution(const RealGrid& theta_m,
                                    const RealGrid& theta_j) const;

  /// The activated (grayscale) source for visualization.
  RealGrid source_image(const RealGrid& theta_j) const;

  /// The activated mask (continuous or binarized) for visualization.
  RealGrid mask_image(const RealGrid& theta_m, bool binary = false) const;

 private:
  SmoConfig config_;
  RealGrid target_;
  ThreadPool* pool_;
  std::shared_ptr<sim::WorkspaceSet> workspaces_;
  std::unique_ptr<SourceGeometry> geometry_;
  std::unique_ptr<AbbeImaging> abbe_;
  std::unique_ptr<AbbeGradientEngine> engine_;
};

}  // namespace bismo

#endif  // BISMO_CORE_PROBLEM_HPP
