// Unified method dispatch for the benchmark harness: every column of
// Tables 3-4 is one `Method`, runnable on any SmoProblem with the budgets
// taken from the problem's SmoConfig.
#ifndef BISMO_CORE_RUNNER_HPP
#define BISMO_CORE_RUNNER_HPP

#include <string>
#include <vector>

#include "core/problem.hpp"
#include "core/run_control.hpp"
#include "core/trace.hpp"
#include "layout/generators.hpp"

namespace bismo {

/// The eight method columns of Table 3 (and Table 4).
enum class Method {
  kNiltProxy,      ///< MO: Hopkins ILT, few kernels, no PVB (NILT [7] proxy)
  kDac23Proxy,     ///< MO: multi-level Hopkins ILT + PVB (DAC23-MILT [10] proxy)
  kAbbeMo,         ///< MO: the paper's Abbe-MO
  kAmAbbeHopkins,  ///< AM-SMO, Abbe SO + Hopkins MO [13]
  kAmAbbeAbbe,     ///< AM-SMO, Abbe everywhere [12]
  kBismoFd,        ///< BiSMO, finite-difference hypergradient
  kBismoCg,        ///< BiSMO, conjugate-gradient hypergradient
  kBismoNmn,       ///< BiSMO, Neumann-series hypergradient
};

/// All methods in Table 3 column order.
const std::vector<Method>& all_methods();

/// Human-readable method name matching the paper's table headers.
std::string to_string(Method method);

/// True for methods that optimize the source as well as the mask.
bool optimizes_source(Method method);

/// Parse a method name.  Exact inverse of `to_string` (for every method m,
/// `method_from_string(to_string(m)) == m`); additionally accepts the
/// short CLI aliases (nilt, dac23, abbe-mo, am-ah, am-aa, bismo-fd,
/// bismo-cg, bismo-nmn), case-insensitively.  Throws std::invalid_argument
/// on an unknown name, listing the accepted spellings.
Method method_from_string(const std::string& name);

/// Parse a dataset-suite name.  Exact inverse of `to_string(DatasetKind)`
/// ("ICCAD13" / "ICCAD-L" / "ISPD19"), case-insensitive.  Throws
/// std::invalid_argument on an unknown name.
DatasetKind dataset_from_string(const std::string& name);

/// Run `method` on `problem` with budgets from `problem.config()`.
/// `control` provides optional per-step progress observation and
/// cooperative cancellation (a cancelled run returns the trace and
/// parameters accumulated so far with `RunResult::cancelled` set).
RunResult run_method(const SmoProblem& problem, Method method,
                     const RunControl& control = {});

}  // namespace bismo

#endif  // BISMO_CORE_RUNNER_HPP
