// Source-only optimization (SO) driver: optimizes the pixelated source for
// a frozen mask -- the lower-level subproblem of Eq. 11 run standalone.
// Used by the source_explorer example, by studies of source sensitivity,
// and as the "SO epoch" building block mirrored in AM-SMO.
#ifndef BISMO_CORE_SOURCE_OPT_HPP
#define BISMO_CORE_SOURCE_OPT_HPP

#include "core/problem.hpp"
#include "core/run_control.hpp"
#include "core/stop.hpp"
#include "core/trace.hpp"
#include "opt/optimizer.hpp"

namespace bismo {

/// Options for source-only optimization.
struct SoOptions {
  int steps = 40;
  OptimizerKind optimizer = OptimizerKind::kAdam;
  double lr = 0.1;                ///< xi_J
  StopCriteria stop{};            ///< optional plateau-based early stop
};

/// Optimize theta_J with theta_M frozen (at `theta_m`); returns the run
/// with theta_m passed through unchanged.
RunResult run_source_opt(const SmoProblem& problem, const RealGrid& theta_m,
                         const SoOptions& options,
                         const RunControl& control = {});

/// Convenience overload starting from the Table 1 mask initialization.
RunResult run_source_opt(const SmoProblem& problem, const SoOptions& options,
                         const RunControl& control = {});

}  // namespace bismo

#endif  // BISMO_CORE_SOURCE_OPT_HPP
