#include "core/am_smo.hpp"

#include <chrono>

#include "grad/hopkins_grad.hpp"
#include "litho/hopkins.hpp"

namespace bismo {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

std::string to_string(AmMode mode) {
  switch (mode) {
    case AmMode::kAbbeAbbe:
      return "AM-SMO(Abbe-Abbe)";
    case AmMode::kAbbeHopkins:
      return "AM-SMO(Abbe-Hopkins)";
  }
  return "AM-SMO(?)";
}

RunResult run_am_smo(const SmoProblem& problem, AmMode mode,
                     const AmOptions& options, const RunControl& control) {
  const auto start = Clock::now();
  const SmoConfig& cfg = problem.config();
  const LossWeights& w = cfg.weights;
  RunResult result;
  result.method = to_string(mode);

  RealGrid theta_m = problem.initial_theta_m();
  RealGrid theta_j = problem.initial_theta_j();
  // Fresh optimizer state per epoch (each argmin of Algorithm 1 is its own
  // minimization); the parameters themselves carry over.
  int global_step = 0;

  for (int cycle = 0; cycle < options.cycles && !result.cancelled; ++cycle) {
    // ---- SO epoch (line 3): theta_M fixed. Always on the Abbe engine. ----
    {
      auto so_opt = make_optimizer(options.optimizer, options.lr_source);
      GradRequest req;
      req.mask = false;
      req.source = true;
      for (int step = 0; step < options.so_steps; ++step) {
        if (control.stop_requested()) {
          result.cancelled = true;
          break;
        }
        const SmoGradient g = problem.engine().evaluate(theta_m, theta_j, req);
        ++result.gradient_evaluations;
        result.trace.push_back({global_step++, w.gamma * g.l2 + w.eta * g.pvb,
                                g.l2, g.pvb, elapsed_seconds(start)});
        control.notify(result.trace.back());
        so_opt->step(theta_j, g.grad_theta_j);
      }
    }
    if (result.cancelled) break;

    // ---- MO epoch (line 5): theta_J fixed. ----
    if (mode == AmMode::kAbbeAbbe) {
      auto mo_opt = make_optimizer(options.optimizer, options.lr_mask);
      GradRequest req;
      req.mask = true;
      req.source = false;
      for (int step = 0; step < options.mo_steps; ++step) {
        if (control.stop_requested()) {
          result.cancelled = true;
          break;
        }
        const SmoGradient g = problem.engine().evaluate(theta_m, theta_j, req);
        ++result.gradient_evaluations;
        result.trace.push_back({global_step++, w.gamma * g.l2 + w.eta * g.pvb,
                                g.l2, g.pvb, elapsed_seconds(start)});
        control.notify(result.trace.back());
        mo_opt->step(theta_m, g.grad_theta_m);
      }
    } else {
      // Abbe-Hopkins hybrid [13]: regenerate the TCC from the *updated*
      // source, then run Hopkins-based MO.  The rebuild cost (Gram matrix +
      // eigendecomposition every cycle) is the method's bottleneck.  The
      // rebuilt engine shares the problem's per-slot workspaces, so the
      // per-cycle rebuild allocates no new scratch.
      const RealGrid source = problem.source_image(theta_j);
      const SocsDecomposition socs(problem.abbe(), source, options.kernels,
                                   cfg.source_cutoff);
      const HopkinsImaging hopkins(cfg.optics, socs, problem.pool(),
                                   problem.workspaces());
      const HopkinsGradientEngine engine(hopkins, problem.target(), cfg.resist,
                                         cfg.activation, cfg.weights,
                                         cfg.process_window);
      auto mo_opt = make_optimizer(options.optimizer, options.lr_mask);
      for (int step = 0; step < options.mo_steps; ++step) {
        if (control.stop_requested()) {
          result.cancelled = true;
          break;
        }
        const SmoGradient g = engine.evaluate(theta_m);
        ++result.gradient_evaluations;
        result.trace.push_back({global_step++, w.gamma * g.l2 + w.eta * g.pvb,
                                g.l2, g.pvb, elapsed_seconds(start)});
        control.notify(result.trace.back());
        mo_opt->step(theta_m, g.grad_theta_m);
      }
    }
  }

  result.theta_m = std::move(theta_m);
  result.theta_j = std::move(theta_j);
  result.wall_seconds = elapsed_seconds(start);
  return result;
}

}  // namespace bismo
