// BiSMO: bilevel source mask optimization (paper Sec. 3.2, Algorithm 2).
//
// Upper level: MO over theta_M; lower level: SO over theta_J.
// Each outer step:
//   1. unroll T inner SO steps to track the best-response theta_J*(theta_M)
//      (warm-started: theta_J0 <- theta_JT, Algorithm 2 line 4);
//   2. form the hypergradient (Eq. 12)
//        dLmo/dthetaM - [d2Lso/dthetaM dthetaJ] w
//      where w approximates [d2Lso/dthetaJ^2]^{-1} dLmo/dthetaJ by
//        FD  (Eq. 13): w = alpha * v                      (K = 0 Neumann)
//        NMN (Eq. 16): w = alpha * sum_{k<=K} (I - alpha H)^k v
//        CG  (Eq. 18): K conjugate-gradient steps on H w = v, warm-started
//   3. update theta_M with the outer optimizer.
//
// alpha is the inner step size xi_J, capped adaptively so the Neumann
// hypothesis ||I - alpha H|| < 1 (Lemma 2) holds along the probed
// direction; the FD variant shares the cap, preserving the paper's
// "FD == NMN at K = 0" identity exactly.
#ifndef BISMO_CORE_BISMO_HPP
#define BISMO_CORE_BISMO_HPP

#include <string>

#include "core/problem.hpp"
#include "core/run_control.hpp"
#include "core/trace.hpp"
#include "opt/optimizer.hpp"

namespace bismo {

/// Hypergradient computation strategy (Sec. 3.2.1-3.2.3).
enum class BismoVariant { kFd, kNmn, kCg };

/// BiSMO budgets and hyperparameters.
struct BismoOptions {
  int outer_steps = 40;  ///< upper-level MO iterations
  int unroll_steps = 3;  ///< T (the FD variant classically uses T = 1)
  int hyper_terms = 5;   ///< K: Neumann terms / CG iterations
  OptimizerKind outer_optimizer = OptimizerKind::kAdam;
  OptimizerKind inner_optimizer = OptimizerKind::kAdam;
  double lr_mask = 0.1;       ///< xi_M
  double lr_source = 0.1;     ///< xi_J (also the Neumann/FD alpha)
  double cg_damping = 0.0;    ///< Tikhonov damping for the CG solve
  double fd_eps_scale = 1e-2; ///< HVP probe magnitude
};

/// Run BiSMO with the chosen hypergradient variant.
RunResult run_bismo(const SmoProblem& problem, BismoVariant variant,
                    const BismoOptions& options,
                    const RunControl& control = {});

/// Human-readable variant name ("BiSMO-FD" etc.).
std::string to_string(BismoVariant variant);

}  // namespace bismo

#endif  // BISMO_CORE_BISMO_HPP
