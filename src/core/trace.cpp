#include "core/trace.hpp"

#include <limits>

namespace bismo {

double RunResult::final_loss() const {
  if (trace.empty()) return std::numeric_limits<double>::infinity();
  return trace.back().loss;
}

}  // namespace bismo
