#include "core/mask_opt.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "grad/hopkins_grad.hpp"
#include "litho/hopkins.hpp"
#include "math/grid_ops.hpp"

namespace bismo {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Standard-weight Lsmo for trace comparability regardless of what loss the
/// driver optimized.
double standard_loss(const SmoProblem& problem, double l2, double pvb) {
  const LossWeights& w = problem.config().weights;
  return w.gamma * l2 + w.eta * pvb;
}

/// Block-majority downsampling of a binary grid by integer factor.
RealGrid downsample_binary(const RealGrid& grid, std::size_t factor) {
  const std::size_t n = grid.rows() / factor;
  RealGrid out(n, n, 0.0);
  const double half = static_cast<double>(factor * factor) / 2.0;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      double acc = 0.0;
      for (std::size_t dr = 0; dr < factor; ++dr) {
        for (std::size_t dc = 0; dc < factor; ++dc) {
          acc += grid(r * factor + dr, c * factor + dc);
        }
      }
      out(r, c) = acc > half ? 1.0 : 0.0;
    }
  }
  return out;
}

/// Nearest-neighbour (pixel-replication) upsampling of parameters by 2x.
RealGrid upsample_params(const RealGrid& grid, std::size_t factor) {
  RealGrid out(grid.rows() * factor, grid.cols() * factor, 0.0);
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      out(r, c) = grid(r / factor, c / factor);
    }
  }
  return out;
}

}  // namespace

RunResult run_abbe_mo(const SmoProblem& problem, const MoOptions& options,
                      const RunControl& control) {
  const auto start = Clock::now();
  RunResult result;
  result.method = "Abbe-MO";

  // A PVB-free variant needs its own engine with eta = 0; gradients are
  // otherwise identical.
  LossWeights weights = problem.config().weights;
  if (!options.use_pvb) weights.eta = 0.0;
  const AbbeGradientEngine engine(
      problem.abbe(), problem.target(), problem.config().resist,
      problem.config().activation, weights, problem.config().process_window,
      problem.config().source_cutoff);

  RealGrid theta_m = problem.initial_theta_m();
  const RealGrid theta_j = problem.initial_theta_j();
  auto opt = make_optimizer(options.optimizer, options.lr);

  GradRequest req;
  req.mask = true;
  req.source = false;
  PlateauDetector plateau(options.stop);
  for (int step = 0; step < options.steps; ++step) {
    if (control.stop_requested()) {
      result.cancelled = true;
      break;
    }
    const SmoGradient g = engine.evaluate(theta_m, theta_j, req);
    ++result.gradient_evaluations;
    const double loss = standard_loss(problem, g.l2, g.pvb);
    result.trace.push_back({step, loss, g.l2, g.pvb,
                            elapsed_seconds(start)});
    control.notify(result.trace.back());
    opt->step(theta_m, g.grad_theta_m);
    if (plateau.should_stop(loss)) break;
  }
  result.theta_m = std::move(theta_m);
  result.theta_j = theta_j;
  result.wall_seconds = elapsed_seconds(start);
  return result;
}

RunResult run_hopkins_mo(const SmoProblem& problem,
                         const HopkinsMoOptions& options,
                         const RunControl& control) {
  const auto start = Clock::now();
  RunResult result;
  result.method = options.levels > 1 ? "DAC23-MILT-proxy" : "Hopkins-MO";
  if (options.levels < 1) {
    throw std::invalid_argument("run_hopkins_mo: levels must be >= 1");
  }

  const SmoConfig& cfg = problem.config();
  LossWeights weights = cfg.weights;
  if (!options.base.use_pvb) weights.eta = 0.0;

  const RealGrid theta_j = problem.initial_theta_j();
  const RealGrid source = problem.source_image(theta_j);

  // Coarse-to-fine schedule: level l uses grid dim / 2^(levels-1-l).
  const int steps_per_level =
      std::max(1, options.base.steps / std::max(1, options.levels));
  RealGrid theta_m;  // initialized at the coarsest level
  int global_step = 0;

  for (int level = 0; level < options.levels; ++level) {
    const std::size_t factor = std::size_t{1}
                               << static_cast<std::size_t>(options.levels - 1 -
                                                           level);
    OpticsConfig optics = cfg.optics;
    optics.mask_dim = cfg.optics.mask_dim / factor;
    optics.pixel_nm = cfg.optics.pixel_nm * static_cast<double>(factor);
    optics.validate();

    const RealGrid target =
        factor == 1 ? problem.target()
                    : downsample_binary(problem.target(), factor);

    // Coarse levels run at a different grid dimension, so they get their
    // own workspace set; the final (full-resolution) level shares the
    // problem's warm workspaces.
    const SourceGeometry geometry(cfg.source_dim, optics);
    const auto level_workspaces =
        factor == 1 ? problem.workspaces()
                    : std::make_shared<sim::WorkspaceSet>();
    const AbbeImaging abbe(optics, geometry, problem.pool(), level_workspaces);
    const SocsDecomposition socs(abbe, source, options.kernels,
                                 cfg.source_cutoff);
    const HopkinsImaging hopkins(optics, socs, problem.pool(),
                                 level_workspaces);
    const HopkinsGradientEngine engine(hopkins, target, cfg.resist,
                                       cfg.activation, weights,
                                       cfg.process_window);

    if (level == 0) {
      theta_m = init_mask_params(target, cfg.activation);
    }
    auto opt = make_optimizer(options.base.optimizer, options.base.lr);
    const int steps =
        level == options.levels - 1
            ? std::max(1, options.base.steps -
                              steps_per_level * (options.levels - 1))
            : steps_per_level;
    // Mean-reduced losses are commensurate across resolutions, so coarse
    // levels trace directly.
    for (int step = 0; step < steps; ++step) {
      if (control.stop_requested()) {
        result.cancelled = true;
        break;
      }
      const SmoGradient g = engine.evaluate(theta_m);
      ++result.gradient_evaluations;
      result.trace.push_back({global_step++,
                              standard_loss(problem, g.l2, g.pvb), g.l2, g.pvb,
                              elapsed_seconds(start)});
      control.notify(result.trace.back());
      opt->step(theta_m, g.grad_theta_m);
    }
    if (result.cancelled) {
      // Cancelled at a coarse level: upsample to the full-resolution shape
      // so the returned parameters are always usable with the problem.
      while (theta_m.rows() < cfg.optics.mask_dim) {
        theta_m = upsample_params(theta_m, 2);
      }
      break;
    }
    if (level + 1 < options.levels) {
      theta_m = upsample_params(theta_m, 2);
    }
  }

  result.theta_m = std::move(theta_m);
  result.theta_j = theta_j;
  result.wall_seconds = elapsed_seconds(start);
  return result;
}

}  // namespace bismo
