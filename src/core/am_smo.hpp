// Alternating-minimization SMO (paper Algorithm 1) -- the SOTA baseline
// BiSMO is compared against:
//
//   repeat:  SO epoch  (theta_J updated, theta_M frozen)
//            MO epoch  (theta_M updated, theta_J frozen)
//
// in two flavours: Abbe-Abbe [12] (both epochs on the Abbe engine) and
// Abbe-Hopkins [13] (SO on Abbe, MO on Hopkins, with the TCC/SOCS
// decomposition rebuilt from the updated source at every cycle -- the
// expensive regeneration step responsible for that method's 19.5x TAT in
// Table 4).
#ifndef BISMO_CORE_AM_SMO_HPP
#define BISMO_CORE_AM_SMO_HPP

#include <cstddef>

#include "core/problem.hpp"
#include "core/run_control.hpp"
#include "core/trace.hpp"
#include "opt/optimizer.hpp"

namespace bismo {

/// Which imaging model each AM epoch uses.
enum class AmMode {
  kAbbeAbbe,     ///< [12]: Abbe for both SO and MO
  kAbbeHopkins,  ///< [13]: Abbe SO + Hopkins MO with TCC rebuilds
};

/// AM-SMO budgets.
struct AmOptions {
  int cycles = 4;      ///< alternation count (outer k of Algorithm 1)
  int so_steps = 10;   ///< SO iterations per cycle
  int mo_steps = 10;   ///< MO iterations per cycle
  OptimizerKind optimizer = OptimizerKind::kAdam;
  double lr_mask = 0.1;
  double lr_source = 0.1;
  std::size_t kernels = 24;  ///< Q for the Abbe-Hopkins MO epochs
};

/// Run AM-SMO.  The trace interleaves SO and MO steps (the zig-zag loss of
/// the paper's Fig. 3).
RunResult run_am_smo(const SmoProblem& problem, AmMode mode,
                     const AmOptions& options, const RunControl& control = {});

/// Human-readable mode name.
std::string to_string(AmMode mode);

}  // namespace bismo

#endif  // BISMO_CORE_AM_SMO_HPP
