// core::AllocGuard: runtime cross-check of the static no-alloc claims.
//
// The lint pass (src/lint) proves textually that annotated hot paths
// contain no allocating constructs; AllocGuard proves it dynamically by
// interposing the global operator new/delete family and counting every
// heap allocation that lands while a guard is armed.  Tests wrap a
// steady-state region (Session::run re-submission, the fused pipeline
// forward+adjoint, the JobQueue push/pop fast path) in a guard and
// assert the count stays zero.
//
// Interposition is compiled out under ASan/TSan/MSan -- the sanitizer
// runtimes own the allocator and replacing operator new underneath them
// is not supported.  `AllocGuard::enforced()` reports whether counting
// is live so tests can skip their assertions (the sanitizer jobs check
// the same paths by other means).
//
// Counting is cheap when no guard is armed: a single relaxed atomic load
// on the allocation path.  Guards nest; arming is process-wide but each
// guard snapshots either the per-thread or the global counter, so a
// kThread guard ignores allocator traffic from unrelated threads.
#ifndef BISMO_CORE_ALLOC_GUARD_HPP
#define BISMO_CORE_ALLOC_GUARD_HPP

#include <cstddef>

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define BISMO_ALLOC_GUARD_DISABLED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#ifndef BISMO_ALLOC_GUARD_DISABLED
#define BISMO_ALLOC_GUARD_DISABLED 1
#endif
#endif
#endif

namespace bismo::core {

/// RAII allocation counter over a scope.  While at least one guard is
/// alive anywhere in the process, the interposed operator new family
/// counts allocations; each guard reports the delta since its own
/// construction.
class AllocGuard {
 public:
  enum class Scope {
    kThread,  ///< count allocations made by the constructing thread
    kGlobal,  ///< count allocations made by any thread
  };

  explicit AllocGuard(Scope scope = Scope::kThread);
  ~AllocGuard();

  AllocGuard(const AllocGuard&) = delete;
  AllocGuard& operator=(const AllocGuard&) = delete;

  /// Allocations observed since construction (0 when not enforced()).
  std::size_t allocations() const;

  /// True when operator-new interposition is compiled in and counting is
  /// live; false under sanitizers.  Tests gate their zero-allocation
  /// assertions on this.
  static bool enforced();

 private:
  Scope scope_;
  std::size_t start_ = 0;
};

}  // namespace bismo::core

#endif  // BISMO_CORE_ALLOC_GUARD_HPP
