// Run records: per-step convergence traces (Figures 3 and 5 plot these)
// and final results with wall-clock accounting (Table 4's TAT).
#ifndef BISMO_CORE_TRACE_HPP
#define BISMO_CORE_TRACE_HPP

#include <string>
#include <vector>

#include "math/grid2d.hpp"

namespace bismo {

/// One optimizer step's bookkeeping.
struct StepRecord {
  int step = 0;
  double loss = 0.0;     ///< Lsmo at this step
  double l2 = 0.0;       ///< unweighted nominal term
  double pvb = 0.0;      ///< unweighted PVB term
  double seconds = 0.0;  ///< cumulative wall time when recorded
};

/// Outcome of one optimization run on one clip.
struct RunResult {
  std::string method;            ///< human-readable method name
  RealGrid theta_m;              ///< final mask parameters
  RealGrid theta_j;              ///< final source parameters
  std::vector<StepRecord> trace; ///< per-step loss trajectory
  double wall_seconds = 0.0;     ///< total optimization time (TAT)
  long gradient_evaluations = 0; ///< count of backward passes
  bool cancelled = false;        ///< stopped early by a CancelToken

  /// Final recorded loss (+inf when the trace is empty).
  double final_loss() const;
};

}  // namespace bismo

#endif  // BISMO_CORE_TRACE_HPP
