#include "core/problem.hpp"

#include <stdexcept>

#include "fft/fft.hpp"
#include "math/grid_ops.hpp"
#include "metrics/metrics.hpp"

namespace bismo {

SmoProblem::SmoProblem(const SmoConfig& config, RealGrid target,
                       ThreadPool* pool,
                       std::shared_ptr<sim::WorkspaceSet> workspaces)
    : config_(config),
      target_(std::move(target)),
      pool_(pool),
      workspaces_(workspaces ? std::move(workspaces)
                             : std::make_shared<sim::WorkspaceSet>()) {
  config_.validate();
  const std::size_t n = config_.optics.mask_dim;
  if (target_.rows() != n || target_.cols() != n) {
    throw std::invalid_argument("SmoProblem: target/mask_dim mismatch");
  }
  geometry_ =
      std::make_unique<SourceGeometry>(config_.source_dim, config_.optics);
  abbe_ = std::make_unique<AbbeImaging>(config_.optics, *geometry_, pool_,
                                        workspaces_);
  engine_ = std::make_unique<AbbeGradientEngine>(
      *abbe_, target_, config_.resist, config_.activation, config_.weights,
      config_.process_window, config_.source_cutoff);
}

sim::ScenarioBatch SmoProblem::scenario_batch(
    std::vector<sim::Scenario> scenarios) const {
  return sim::ScenarioBatch(config_.optics, *geometry_, std::move(scenarios),
                            pool_, workspaces_);
}

SmoProblem::SmoProblem(const SmoConfig& config, const Layout& clip,
                       ThreadPool* pool,
                       std::shared_ptr<sim::WorkspaceSet> workspaces)
    : SmoProblem(config, clip.rasterize(config.optics.mask_dim), pool,
                 std::move(workspaces)) {}

RealGrid SmoProblem::initial_theta_m() const {
  return init_mask_params(target_, config_.activation);
}

RealGrid SmoProblem::initial_theta_j() const {
  const RealGrid j0 = make_source(*geometry_, config_.initial_source);
  return init_source_params(j0, config_.activation);
}

RealGrid SmoProblem::source_image(const RealGrid& theta_j) const {
  return activate_source(theta_j, *geometry_, config_.activation);
}

RealGrid SmoProblem::mask_image(const RealGrid& theta_m, bool binary) const {
  RealGrid m = activate_mask(theta_m, config_.activation);
  return binary ? binarize(m) : m;
}

RealGrid SmoProblem::resist_image(const RealGrid& theta_m,
                                  const RealGrid& theta_j, DoseCorner corner,
                                  bool binary_mask) const {
  const RealGrid mask = mask_image(theta_m, binary_mask);
  const RealGrid source = source_image(theta_j);
  ComplexGrid o = to_complex(mask);
  fft2(o);
  const RealGrid intensity =
      abbe_->aerial(o, source, config_.source_cutoff).intensity;
  const double d = dose_factor(corner, config_.process_window);
  return config_.resist.apply(intensity * (d * d));
}

SolutionMetrics SmoProblem::evaluate_solution(const RealGrid& theta_m,
                                              const RealGrid& theta_j) const {
  const RealGrid mask = mask_image(theta_m, /*binary=*/true);
  const RealGrid source = source_image(theta_j);
  ComplexGrid o = to_complex(mask);
  fft2(o);
  const RealGrid intensity =
      abbe_->aerial(o, source, config_.source_cutoff).intensity;

  const double pixel = config_.optics.pixel_nm;
  const ProcessWindow& pw = config_.process_window;
  const RealGrid print_nom = config_.resist.print(intensity);
  const RealGrid print_min =
      config_.resist.print(intensity * (pw.dose_min * pw.dose_min));
  const RealGrid print_max =
      config_.resist.print(intensity * (pw.dose_max * pw.dose_max));

  SolutionMetrics out;
  out.l2_nm2 = squared_l2_nm2(print_nom, target_, pixel);
  out.pvb_nm2 = pvb_nm2(print_min, print_max, pixel);

  const RealGrid z_cont = config_.resist.apply(intensity);
  const EpeResult epe = measure_epe(z_cont, target_, pixel, config_.epe);
  out.epe_violations = epe.violations;
  out.epe_samples = epe.samples;

  const SmoLoss loss = evaluate_smo_loss(intensity, target_, config_.resist,
                                         config_.weights, pw,
                                         /*want_backprop=*/false);
  out.loss = loss.total;
  return out;
}

}  // namespace bismo
