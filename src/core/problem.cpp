#include "core/problem.hpp"

#include <stdexcept>

#include "fft/fft.hpp"
#include "math/grid_ops.hpp"
#include "metrics/metrics.hpp"

namespace bismo {

SmoProblem::SmoProblem(const SmoConfig& config, RealGrid target,
                       ThreadPool* pool,
                       std::shared_ptr<sim::WorkspaceSet> workspaces)
    : config_(config),
      target_(std::move(target)),
      pool_(pool),
      workspaces_(workspaces ? std::move(workspaces)
                             : std::make_shared<sim::WorkspaceSet>()) {
  config_.validate();
  const std::size_t n = config_.optics.mask_dim;
  if (target_.rows() != n || target_.cols() != n) {
    throw std::invalid_argument("SmoProblem: target/mask_dim mismatch");
  }
  geometry_ =
      std::make_unique<SourceGeometry>(config_.source_dim, config_.optics);
  abbe_ = std::make_unique<AbbeImaging>(config_.optics, *geometry_, pool_,
                                        workspaces_);
  engine_ = std::make_unique<AbbeGradientEngine>(
      *abbe_, target_, config_.resist, config_.activation, config_.weights,
      config_.process_window, config_.source_cutoff);
}

sim::ScenarioBatch SmoProblem::scenario_batch(
    std::vector<sim::Scenario> scenarios) const {
  return sim::ScenarioBatch(config_.optics, *geometry_, std::move(scenarios),
                            pool_, workspaces_);
}

SmoProblem::SmoProblem(const SmoConfig& config, const Layout& clip,
                       ThreadPool* pool,
                       std::shared_ptr<sim::WorkspaceSet> workspaces)
    : SmoProblem(config, clip.rasterize(config.optics.mask_dim), pool,
                 std::move(workspaces)) {}

RealGrid SmoProblem::initial_theta_m() const {
  return init_mask_params(target_, config_.activation);
}

RealGrid SmoProblem::initial_theta_j() const {
  const RealGrid j0 = make_source(*geometry_, config_.initial_source);
  return init_source_params(j0, config_.activation);
}

RealGrid SmoProblem::source_image(const RealGrid& theta_j) const {
  return activate_source(theta_j, *geometry_, config_.activation);
}

RealGrid SmoProblem::mask_image(const RealGrid& theta_m, bool binary) const {
  RealGrid m = activate_mask(theta_m, config_.activation);
  return binary ? binarize(m) : m;
}

RealGrid SmoProblem::aerial_image(const RealGrid& theta_m,
                                  const RealGrid& theta_j,
                                  bool binary_mask) const {
  const RealGrid mask = mask_image(theta_m, binary_mask);
  const RealGrid source = source_image(theta_j);
  ComplexGrid o = to_complex(mask);
  fft2(o);
  return abbe_->aerial(o, source, config_.source_cutoff).intensity;
}

RealGrid SmoProblem::resist_image(const RealGrid& theta_m,
                                  const RealGrid& theta_j, DoseCorner corner,
                                  bool binary_mask) const {
  const RealGrid intensity = aerial_image(theta_m, theta_j, binary_mask);
  const double d = dose_factor(corner, config_.process_window);
  return config_.resist.apply(intensity * (d * d));
}

SolutionMetrics SmoProblem::evaluate_solution(const RealGrid& theta_m,
                                              const RealGrid& theta_j) const {
  const RealGrid intensity =
      aerial_image(theta_m, theta_j, /*binary_mask=*/true);
  return evaluate_solution_metrics(intensity, target_, config_.resist,
                                   config_.weights, config_.process_window,
                                   config_.epe, config_.optics.pixel_nm);
}

}  // namespace bismo
