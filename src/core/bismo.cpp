#include "core/bismo.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "grad/hvp.hpp"
#include "linalg/cg.hpp"
#include "math/grid_ops.hpp"

namespace bismo {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Contraction-safe Neumann step size: alpha = xi_J capped at 0.9/lambda_max
/// where lambda_max is estimated along the seed direction v by one HVP.
/// Without the cap, alpha * H with our sum-scaled loss (gamma = 1000 over
/// all pixels) has spectral radius >> 1 and the series diverges; ref. [14]
/// applies the same learning-rate-scaled series.
double contraction_alpha(double xi, const RealGrid& v, const RealGrid& hv) {
  const double nv = norm2(v);
  const double nhv = norm2(hv);
  if (nv < 1e-30 || nhv < 1e-30) return xi;
  const double lambda_est = nhv / nv;
  return std::min(xi, 0.9 / lambda_est);
}

}  // namespace

std::string to_string(BismoVariant variant) {
  switch (variant) {
    case BismoVariant::kFd:
      return "BiSMO-FD";
    case BismoVariant::kNmn:
      return "BiSMO-NMN";
    case BismoVariant::kCg:
      return "BiSMO-CG";
  }
  return "BiSMO-?";
}

RunResult run_bismo(const SmoProblem& problem, BismoVariant variant,
                    const BismoOptions& options, const RunControl& control) {
  const auto start = Clock::now();
  const SmoConfig& cfg = problem.config();
  const LossWeights& w = cfg.weights;
  const AbbeGradientEngine& engine = problem.engine();
  const HypergradientOps hyper(engine, options.fd_eps_scale);

  RunResult result;
  result.method = to_string(variant);

  RealGrid theta_m = problem.initial_theta_m();
  RealGrid theta_j = problem.initial_theta_j();
  auto outer_opt = make_optimizer(options.outer_optimizer, options.lr_mask);
  auto inner_opt = make_optimizer(options.inner_optimizer, options.lr_source);

  // CG warm start w0, re-initialized from each solve (Alg. 2 line 10).
  RealGrid cg_warm(theta_j.rows(), theta_j.cols(), 0.0);

  GradRequest source_only;
  source_only.mask = false;
  source_only.source = true;

  for (int outer = 0; outer < options.outer_steps; ++outer) {
    if (control.stop_requested()) {
      result.cancelled = true;
      break;
    }
    // ---- Lower level: unroll T SO steps (Alg. 2 lines 2-4). ----
    for (int t = 0; t < options.unroll_steps; ++t) {
      const SmoGradient g = engine.evaluate(theta_m, theta_j, source_only);
      ++result.gradient_evaluations;
      inner_opt->step(theta_j, g.grad_theta_j);
    }

    // ---- Hypergradient (Eq. 12): direct parts first. ----
    const SmoGradient g = engine.evaluate(theta_m, theta_j, GradRequest{});
    ++result.gradient_evaluations;
    result.trace.push_back({outer, w.gamma * g.l2 + w.eta * g.pvb, g.l2,
                            g.pvb, elapsed_seconds(start)});
    control.notify(result.trace.back());
    const RealGrid& v = g.grad_theta_j;  // dLmo/dthetaJ

    RealGrid wvec(theta_j.rows(), theta_j.cols(), 0.0);
    const double vn = norm2(v);
    if (vn > 1e-30) {
      switch (variant) {
        case BismoVariant::kFd: {
          // Eq. 13: w = alpha * v (identical to the K = 0 Neumann sum).
          const RealGrid hv = hyper.hvp_source(theta_m, theta_j, v);
          const double alpha = contraction_alpha(options.lr_source, v, hv);
          wvec = v * alpha;
          break;
        }
        case BismoVariant::kNmn: {
          // Eq. 16: w = alpha * sum_{k=0..K} (I - alpha H)^k v, evaluated
          // iteratively with one HVP per term.  The series only converges
          // where the Hessian is positive along the iterate (Lemma 2); a
          // growing term signals a negative/over-large curvature direction,
          // in which case the partial sum so far is kept (the same
          // safeguard CG applies on negative curvature).
          RealGrid hv = hyper.hvp_source(theta_m, theta_j, v);
          const double alpha = contraction_alpha(options.lr_source, v, hv);
          RealGrid cur = v;
          RealGrid acc = v;
          for (int k = 0; k < options.hyper_terms; ++k) {
            if (k > 0) hv = hyper.hvp_source(theta_m, theta_j, cur);
            cur = axpy(cur, -alpha, hv);
            const double cn = norm2(cur);
            if (!std::isfinite(cn) || cn > 1.5 * vn) break;
            acc += cur;
          }
          wvec = acc * alpha;
          break;
        }
        case BismoVariant::kCg: {
          // Eq. 17-18: K CG steps on [d2Lso/dthetaJ^2] w = v.
          CgOptions cg_opt;
          cg_opt.max_iterations = options.hyper_terms;
          cg_opt.damping = options.cg_damping;
          cg_opt.tolerance = 1e-10;
          const auto apply = [&](const RealGrid& x) {
            return hyper.hvp_source(theta_m, theta_j, x);
          };
          const CgResult sol = conjugate_gradient(apply, v, cg_warm, cg_opt);
          wvec = sol.x;
          cg_warm = wvec;  // warm start the next outer step
          break;
        }
      }
    }

    // Gradient fusion: hyper = dLmo/dthetaM - [d2Lso/dthetaM dthetaJ] w.
    RealGrid hypergrad = g.grad_theta_m;
    if (norm2(wvec) > 1e-30) {
      const RealGrid mixed = hyper.mixed_mask_source(theta_m, theta_j, wvec);
      hypergrad -= mixed;
    }

    // ---- Upper level: MO update (Alg. 2 line 13). ----
    outer_opt->step(theta_m, hypergrad);
  }
  result.gradient_evaluations += hyper.evaluations();

  result.theta_m = std::move(theta_m);
  result.theta_j = std::move(theta_j);
  result.wall_seconds = elapsed_seconds(start);
  return result;
}

}  // namespace bismo
