// Run-time control of the optimization drivers: per-step progress
// observation and cooperative cancellation.
//
// Every driver loop (core/bismo, core/am_smo, core/mask_opt,
// core/source_opt) records a StepRecord per optimizer step; a RunControl
// passed alongside the options forwards each record to an observer as it
// is produced and lets a long run be aborted between steps.  Cancellation
// is cooperative: the token is checked once per step, the driver keeps the
// trace and parameters computed so far and returns with
// `RunResult::cancelled` set.  This complements the plateau-based early
// stopping of core/stop.hpp (which the loss stream itself triggers).
#ifndef BISMO_CORE_RUN_CONTROL_HPP
#define BISMO_CORE_RUN_CONTROL_HPP

#include <atomic>
#include <functional>

#include "core/trace.hpp"

namespace bismo {

/// Shared flag requesting a run to stop at the next step boundary.
/// Thread-safe: any thread may call `request()` while a driver polls
/// `requested()` from the optimization loop.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Ask the run(s) observing this token to stop.
  void request() noexcept { flag_.store(true, std::memory_order_relaxed); }

  /// True once a stop has been requested.
  bool requested() const noexcept {
    return flag_.load(std::memory_order_relaxed);
  }

  /// Re-arm the token for a new run.
  void reset() noexcept { flag_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
};

/// Per-step progress callback.  Invoked from the driver's own thread
/// immediately after the step is appended to the trace; keep it cheap.
using StepObserver = std::function<void(const StepRecord&)>;

/// Observation + cancellation bundle threaded through `run_method` and the
/// individual drivers.  Default-constructed it is inert (no observer, no
/// cancellation) so existing call sites are unaffected.
///
/// Cancellation composes two scopes: `cancel` is the run's own token (one
/// job of an api::Session, one sweep of a bench), while `session_cancel`
/// optionally points at an enclosing scope's token (a session-wide drain).
/// The run stops when EITHER is requested, so cancelling one job never
/// requires poisoning a shared global token.
struct RunControl {
  StepObserver on_step;               ///< optional per-step callback
  const CancelToken* cancel = nullptr;  ///< the run's own token
  const CancelToken* session_cancel = nullptr;  ///< enclosing-scope token

  /// True when the driver should stop at the next step boundary.
  bool stop_requested() const noexcept {
    return (cancel != nullptr && cancel->requested()) ||
           (session_cancel != nullptr && session_cancel->requested());
  }

  /// Forward a freshly recorded step to the observer, if any.
  void notify(const StepRecord& record) const {
    if (on_step) on_step(record);
  }
};

}  // namespace bismo

#endif  // BISMO_CORE_RUN_CONTROL_HPP
