// Convergence criteria for the optimization drivers.
//
// The paper notes (Sec. 3.2) that AM-SMO's lack of global gradient guidance
// "complicates establishing effective early stopping criteria"; this module
// provides the plateau detector all drivers share so that observation can
// be studied quantitatively (see bench_ablation_k / EXPERIMENTS.md).
#ifndef BISMO_CORE_STOP_HPP
#define BISMO_CORE_STOP_HPP

#include <cstddef>

namespace bismo {

/// Plateau-based early stopping: stop when the best loss seen has not
/// improved by a relative `min_improvement` for `patience` consecutive
/// steps (after at least `min_steps` steps).  Disabled when patience == 0.
struct StopCriteria {
  int patience = 0;              ///< 0 disables early stopping
  double min_improvement = 1e-3; ///< relative improvement threshold
  int min_steps = 5;             ///< never stop before this many steps
};

/// Stateful plateau detector applying StopCriteria to a loss stream.
class PlateauDetector {
 public:
  explicit PlateauDetector(const StopCriteria& criteria)
      : criteria_(criteria) {}

  /// Feed the loss of the step just completed; returns true when the
  /// criteria say to stop *after* this step.
  bool should_stop(double loss) noexcept {
    ++steps_;
    if (loss < best_ * (1.0 - criteria_.min_improvement) || steps_ == 1) {
      best_ = loss;
      stale_ = 0;
    } else {
      ++stale_;
    }
    if (criteria_.patience <= 0) return false;
    return steps_ >= criteria_.min_steps && stale_ >= criteria_.patience;
  }

  /// Best loss observed so far.
  double best() const noexcept { return best_; }
  /// Steps observed.
  int steps() const noexcept { return steps_; }

 private:
  StopCriteria criteria_;
  double best_ = 0.0;
  int steps_ = 0;
  int stale_ = 0;
};

}  // namespace bismo

#endif  // BISMO_CORE_STOP_HPP
