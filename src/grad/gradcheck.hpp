// Numerical gradient checking harness: compares analytic gradients against
// central finite differences of the loss on a random probe subset of
// parameters.  Used by the test suite to certify every hand-derived adjoint.
#ifndef BISMO_GRAD_GRADCHECK_HPP
#define BISMO_GRAD_GRADCHECK_HPP

#include <cstddef>
#include <functional>

#include "math/grid2d.hpp"
#include "math/rng.hpp"

namespace bismo {

/// Result of a gradient check.
struct GradCheckResult {
  double max_abs_error = 0.0;  ///< max |analytic - numeric| over probes
  double max_rel_error = 0.0;  ///< max relative error (guarded denominator)
  std::size_t probes = 0;      ///< number of entries checked
};

/// Check `analytic_grad` against central differences of `loss_fn` at
/// `params`, probing `probes` randomly chosen entries with step `eps`.
/// `loss_fn` must be deterministic.
GradCheckResult check_gradient(
    const std::function<double(const RealGrid&)>& loss_fn,
    const RealGrid& params, const RealGrid& analytic_grad, Rng& rng,
    std::size_t probes = 24, double eps = 1e-5);

}  // namespace bismo

#endif  // BISMO_GRAD_GRADCHECK_HPP
