// The SMO objective (paper Eqs. 7-9) and its reverse-mode seed.
//
//   L2   = || Z - Zt ||^2 / Npx                (Eq. 7, nominal dose)
//   Lpvb = (|| Zmax - Zt ||^2 + || Zmin - Zt ||^2) / Npx   (Eq. 8)
//   Lsmo = gamma * L2 + eta * Lpvb             (Eq. 9; == Lso == Lmo)
//
// The squared norms are *mean*-reduced over the Npx = Nm^2 pixels.  Eq. 7
// as printed is a plain sum, but the paper's hyperparameters only cohere
// with mean reduction (PyTorch's MSELoss default): gamma = 1000 with
// xi = 0.1 and a convergent Neumann series (Lemma 2 needs ||I - xi*H|| < 1)
// requires O(1..10) losses, and Fig. 3's y-axis spans log10(L) in
// [0.1, 0.7], i.e. L in [1.3, 5] -- the mean-reduced scale.  The *metrics*
// reported in Tables 3-4 (areas in nm^2) are unaffected; see
// metrics/metrics.hpp.
//
// Key identity used throughout the gradient engines: a dose corner scales
// the activated mask by d (M_c = d * M, Eq. 8), the imaging operator is
// linear in the mask and intensity is quadratic in the field, hence
//   I_c = d^2 * I.
// One aerial-image evaluation therefore yields all three resist images, and
// the three corners' adjoints collapse into a single dL/dI seed with d_c^2
// chain factors.
#ifndef BISMO_GRAD_LOSS_HPP
#define BISMO_GRAD_LOSS_HPP

#include "litho/optics.hpp"
#include "litho/resist.hpp"
#include "math/grid2d.hpp"

namespace bismo {

/// Loss weighting factors (paper Sec. 4: gamma = 1000, eta = 3000).
struct LossWeights {
  double gamma = 1000.0;  ///< weight of the nominal L2 term
  double eta = 3000.0;    ///< weight of the PVB term
};

/// Value of the SMO loss plus everything the backward pass needs.
struct SmoLoss {
  double total = 0.0;  ///< gamma * l2 + eta * pvb
  double l2 = 0.0;     ///< unweighted || Z - Zt ||^2 at nominal dose
  double pvb = 0.0;    ///< unweighted corner sum (Eq. 8)
  RealGrid z_nominal;  ///< sigmoid resist image at nominal dose
  RealGrid dl_di;      ///< dL/dI seed (all corners fused), or empty
};

/// Evaluate Lsmo from a normalized aerial image and optionally produce the
/// fused dL/dI seed for reverse mode.  `target` must match `intensity` in
/// shape (throws std::invalid_argument otherwise).
SmoLoss evaluate_smo_loss(const RealGrid& intensity, const RealGrid& target,
                          const ResistModel& resist,
                          const LossWeights& weights, const ProcessWindow& pw,
                          bool want_backprop);

}  // namespace bismo

#endif  // BISMO_GRAD_LOSS_HPP
