#include "grad/abbe_grad.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "fft/fft.hpp"
#include "math/grid_ops.hpp"
#include "sim/imaging_model.hpp"

namespace bismo {

AbbeGradientEngine::AbbeGradientEngine(const AbbeImaging& abbe,
                                       const RealGrid& target,
                                       ResistModel resist,
                                       ActivationConfig activation,
                                       LossWeights weights, ProcessWindow pw,
                                       double source_cutoff)
    : abbe_(&abbe),
      target_(target),
      resist_(resist),
      activation_(activation),
      weights_(weights),
      pw_(pw),
      source_cutoff_(source_cutoff) {
  const std::size_t n = abbe.optics().mask_dim;
  if (target_.rows() != n || target_.cols() != n) {
    throw std::invalid_argument("AbbeGradientEngine: target shape mismatch");
  }
}

RealGrid AbbeGradientEngine::aerial(const RealGrid& theta_m,
                                    const RealGrid& theta_j) const {
  const RealGrid mask = activate_mask(theta_m, activation_);
  const RealGrid source =
      activate_source(theta_j, abbe_->geometry(), activation_);
  ComplexGrid o = to_complex(mask);
  fft2(o);
  return abbe_->aerial(o, source, source_cutoff_).intensity;
}

SmoLoss AbbeGradientEngine::loss_only(const RealGrid& theta_m,
                                      const RealGrid& theta_j) const {
  return evaluate_smo_loss(aerial(theta_m, theta_j), target_, resist_,
                           weights_, pw_, /*want_backprop=*/false);
}

SmoGradient AbbeGradientEngine::evaluate(const RealGrid& theta_m,
                                         const RealGrid& theta_j,
                                         const GradRequest& request) const {
  const SourceGeometry& geometry = abbe_->geometry();
  const auto& pts = geometry.points();
  const std::size_t n = abbe_->optics().mask_dim;

  const RealGrid mask = activate_mask(theta_m, activation_);
  const RealGrid source = activate_source(theta_j, geometry, activation_);

  ComplexGrid o = to_complex(mask);
  fft2(o);

  // When gradients are requested, capture each component's coherent field
  // during the forward intensity pass so the backward sweep seeds its
  // adjoints from the cache instead of recomputing every transform (fused
  // pipeline mode only -- staged mode keeps the legacy double sweep).
  // With narrow pass-bands the backward sweep runs the band-restricted
  // direct adjoint and needs no fields, so capture stays disarmed.
  const bool want_backprop = request.mask || request.source;
  sim::FieldCaptureScope capture(
      abbe_->workspaces(), abbe_->components(),
      want_backprop && !sim::adjoint_uses_band_conv(*abbe_));

  const AbbeAerial fwd = abbe_->aerial(o, source, source_cutoff_);
  const double w_total = fwd.total_weight;
  if (w_total <= 0.0) {
    throw std::runtime_error("AbbeGradientEngine: source has no power");
  }

  const SmoLoss loss = evaluate_smo_loss(fwd.intensity, target_, resist_,
                                         weights_, pw_, want_backprop);

  SmoGradient out;
  out.loss = loss.total;
  out.l2 = loss.l2;
  out.pvb = loss.pvb;
  if (!want_backprop) return out;

  const RealGrid& dldi = loss.dl_di;

  // Backward sweep: one adjoint chain per needed source point, run through
  // the unified engine layer (sim::adjoint_pass) over the per-slot
  // workspaces -- allocation- and lock-free in steady state, statically
  // partitioned for determinism, seeded from the captured forward fields.
  //
  // Mask gradients only need points that contribute to the image; the
  // source gradient needs |A|^2 even where j ~ 0 (to revive points), so
  // the item list covers every point either path requires.
  const std::size_t npts = pts.size();
  std::vector<double> gj_raw(request.source ? npts : 0, 0.0);
  std::vector<sim::AdjointItem> items;
  items.reserve(npts);
  for (std::size_t k = 0; k < npts; ++k) {
    const double jw = source(pts[k].row, pts[k].col);
    const bool mask_path = request.mask && jw > source_cutoff_;
    if (!mask_path && !request.source) continue;
    sim::AdjointItem item;
    item.component = static_cast<std::uint32_t>(k);
    item.mask = mask_path;
    item.scale = mask_path ? 2.0 * jw / w_total : 0.0;
    items.push_back(item);
  }

  // The source-gradient reduction sum dL/dI * |A_s|^2 is computed inside
  // the fused forward chain of each item (adjoint_pass's wns output), so
  // no separate field traversal is needed.
  std::vector<double> item_wns;
  ComplexGrid go = sim::adjoint_pass(*abbe_, o, dldi, items,
                                     request.source ? &item_wns : nullptr);
  if (request.source) {
    for (std::size_t k = 0; k < items.size(); ++k) {
      gj_raw[items[k].component] = item_wns[k];
    }
  }

  if (request.mask) {
    // Every mask-path point can be below the cutoff (e.g. an all-dark
    // source); the adjoint is then exactly zero, not absent.
    if (go.empty()) go = ComplexGrid(n, n);
    const ComplexGrid gm_complex = fft2_adjoint(go);
    const RealGrid gm = real_part(gm_complex);
    const RealGrid dact = mask_activation_derivative(theta_m, mask, activation_);
    out.grad_theta_m = gm * dact;
  }

  if (request.source) {
    // dL/dj_s = (sum dL/dI |A_s|^2 - sum dL/dI * I) / W, then the
    // activation chain rule (zero at invalid sigma points).
    const double c_term = dot(dldi, fwd.intensity);
    RealGrid gj(geometry.dim(), geometry.dim(), 0.0);
    for (std::size_t k = 0; k < npts; ++k) {
      gj(pts[k].row, pts[k].col) = (gj_raw[k] - c_term) / w_total;
    }
    const RealGrid dact =
        source_activation_derivative(theta_j, source, geometry, activation_);
    out.grad_theta_j = gj * dact;
  }
  return out;
}

}  // namespace bismo
