#include "grad/loss.hpp"

#include <algorithm>
#include <stdexcept>

#include "fft/kernels/kernel.hpp"
#include "math/grid_ops.hpp"

namespace bismo {

SmoLoss evaluate_smo_loss(const RealGrid& intensity, const RealGrid& target,
                          const ResistModel& resist,
                          const LossWeights& weights, const ProcessWindow& pw,
                          bool want_backprop) {
  if (!intensity.same_shape(target)) {
    throw std::invalid_argument("evaluate_smo_loss: shape mismatch");
  }
  SmoLoss out;
  const std::size_t n = intensity.size();
  if (want_backprop) out.dl_di = RealGrid(intensity.rows(), intensity.cols());
  out.z_nominal = RealGrid(intensity.rows(), intensity.cols());

  const double d_min_sq = pw.dose_min * pw.dose_min;
  const double d_max_sq = pw.dose_max * pw.dose_max;

  // Resist activations as vectorized sigmoid passes (the exp-heavy part of
  // the loss), processed in fixed-size blocks: the dose-corner activations
  // live in small stack buffers consumed immediately by the fused
  // loss/gradient arithmetic, so the pass allocates nothing and retains
  // nothing while the kernel calls stay long enough to amortize.  The
  // dose-scaled intensity is staged first so the sigmoid argument
  // beta * (d^2*I - I_tr) is formed exactly as the old fused scalar loop
  // did; block order matches flat element order, so sums are bitwise
  // independent of the block size.
  const fft::FftKernel& kernel = fft::active_kernel();
  kernel.sigmoid(out.z_nominal.data(), intensity.data(), n, resist.beta,
                 resist.threshold);

  constexpr std::size_t kBlock = 2048;
  double z_min[kBlock];
  double z_max[kBlock];
  double scaled[kBlock];

  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::size_t start = 0; start < n; start += kBlock) {
    const std::size_t len = std::min(kBlock, n - start);
    for (std::size_t i = 0; i < len; ++i) {
      scaled[i] = d_min_sq * intensity[start + i];
    }
    kernel.sigmoid(z_min, scaled, len, resist.beta, resist.threshold);
    for (std::size_t i = 0; i < len; ++i) {
      scaled[i] = d_max_sq * intensity[start + i];
    }
    kernel.sigmoid(z_max, scaled, len, resist.beta, resist.threshold);

    for (std::size_t i = 0; i < len; ++i) {
      const double t = target[start + i];
      const double z_nom = out.z_nominal[start + i];

      const double diff_nom = z_nom - t;
      const double diff_min = z_min[i] - t;
      const double diff_max = z_max[i] - t;
      out.l2 += diff_nom * diff_nom;
      out.pvb += diff_min * diff_min + diff_max * diff_max;

      if (want_backprop) {
        // dL/dI = (1/Npx) sum_c w_c * 2 * diff_c * beta * Z_c(1-Z_c) * d_c^2.
        double g = weights.gamma * 2.0 * diff_nom * resist.beta * z_nom *
                   (1.0 - z_nom);
        g += weights.eta * 2.0 * diff_min * resist.beta * z_min[i] *
             (1.0 - z_min[i]) * d_min_sq;
        g += weights.eta * 2.0 * diff_max * resist.beta * z_max[i] *
             (1.0 - z_max[i]) * d_max_sq;
        out.dl_di[start + i] = g * inv_n;
      }
    }
  }
  out.l2 *= inv_n;
  out.pvb *= inv_n;
  out.total = weights.gamma * out.l2 + weights.eta * out.pvb;
  return out;
}

}  // namespace bismo
