#include "grad/loss.hpp"

#include <stdexcept>

#include "math/grid_ops.hpp"

namespace bismo {

SmoLoss evaluate_smo_loss(const RealGrid& intensity, const RealGrid& target,
                          const ResistModel& resist,
                          const LossWeights& weights, const ProcessWindow& pw,
                          bool want_backprop) {
  if (!intensity.same_shape(target)) {
    throw std::invalid_argument("evaluate_smo_loss: shape mismatch");
  }
  SmoLoss out;
  const std::size_t n = intensity.size();
  if (want_backprop) out.dl_di = RealGrid(intensity.rows(), intensity.cols());
  out.z_nominal = RealGrid(intensity.rows(), intensity.cols());

  const double d_min_sq = pw.dose_min * pw.dose_min;
  const double d_max_sq = pw.dose_max * pw.dose_max;

  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double base = intensity[i];
    const double t = target[i];

    const double z_nom = sigmoid(resist.beta * (base - resist.threshold));
    const double z_min =
        sigmoid(resist.beta * (d_min_sq * base - resist.threshold));
    const double z_max =
        sigmoid(resist.beta * (d_max_sq * base - resist.threshold));
    out.z_nominal[i] = z_nom;

    const double diff_nom = z_nom - t;
    const double diff_min = z_min - t;
    const double diff_max = z_max - t;
    out.l2 += diff_nom * diff_nom;
    out.pvb += diff_min * diff_min + diff_max * diff_max;

    if (want_backprop) {
      // dL/dI = (1/Npx) sum_c w_c * 2 * diff_c * beta * Z_c(1-Z_c) * d_c^2.
      double g = weights.gamma * 2.0 * diff_nom * resist.beta * z_nom *
                 (1.0 - z_nom);
      g += weights.eta * 2.0 * diff_min * resist.beta * z_min *
           (1.0 - z_min) * d_min_sq;
      g += weights.eta * 2.0 * diff_max * resist.beta * z_max *
           (1.0 - z_max) * d_max_sq;
      out.dl_di[i] = g * inv_n;
    }
  }
  out.l2 *= inv_n;
  out.pvb *= inv_n;
  out.total = weights.gamma * out.l2 + weights.eta * out.pvb;
  return out;
}

}  // namespace bismo
