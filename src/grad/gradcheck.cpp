#include "grad/gradcheck.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bismo {

GradCheckResult check_gradient(
    const std::function<double(const RealGrid&)>& loss_fn,
    const RealGrid& params, const RealGrid& analytic_grad, Rng& rng,
    std::size_t probes, double eps) {
  if (!params.same_shape(analytic_grad)) {
    throw std::invalid_argument("check_gradient: shape mismatch");
  }
  GradCheckResult result;
  // Scale floor: entries much smaller than the gradient's overall magnitude
  // carry finite-difference roundoff (the loss is O(1e6); differencing it
  // to probe a 1e-4-scale entry leaves few significant digits), so their
  // error is measured relative to the gradient scale rather than to the
  // (tiny) entry itself.
  double grad_scale = 0.0;
  for (const double g : analytic_grad) {
    grad_scale = std::max(grad_scale, std::abs(g));
  }
  const double floor = std::max(1e-3 * grad_scale, 1e-12);

  RealGrid work = params;
  for (std::size_t p = 0; p < probes; ++p) {
    const auto idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(params.size()) - 1));
    const double saved = work[idx];
    work[idx] = saved + eps;
    const double lp = loss_fn(work);
    work[idx] = saved - eps;
    const double lm = loss_fn(work);
    work[idx] = saved;
    const double numeric = (lp - lm) / (2.0 * eps);
    const double analytic = analytic_grad[idx];
    const double abs_err = std::abs(analytic - numeric);
    const double denom =
        std::max({std::abs(analytic), std::abs(numeric), floor});
    result.max_abs_error = std::max(result.max_abs_error, abs_err);
    result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
    ++result.probes;
  }
  return result;
}

}  // namespace bismo
