#include "grad/hopkins_grad.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "fft/fft.hpp"
#include "math/grid_ops.hpp"
#include "parallel/reduction.hpp"

namespace bismo {

HopkinsGradientEngine::HopkinsGradientEngine(const HopkinsImaging& hopkins,
                                             const RealGrid& target,
                                             ResistModel resist,
                                             ActivationConfig activation,
                                             LossWeights weights,
                                             ProcessWindow pw)
    : hopkins_(&hopkins),
      target_(target),
      resist_(resist),
      activation_(activation),
      weights_(weights),
      pw_(pw) {
  const std::size_t n = hopkins.optics().mask_dim;
  if (target_.rows() != n || target_.cols() != n) {
    throw std::invalid_argument("HopkinsGradientEngine: target shape mismatch");
  }
}

RealGrid HopkinsGradientEngine::aerial(const RealGrid& theta_m) const {
  const RealGrid mask = activate_mask(theta_m, activation_);
  ComplexGrid o = to_complex(mask);
  fft2(o);
  return hopkins_->aerial(o);
}

SmoLoss HopkinsGradientEngine::loss_only(const RealGrid& theta_m) const {
  return evaluate_smo_loss(aerial(theta_m), target_, resist_, weights_, pw_,
                           /*want_backprop=*/false);
}

SmoGradient HopkinsGradientEngine::evaluate(const RealGrid& theta_m) const {
  const std::size_t n = hopkins_->optics().mask_dim;
  const RealGrid mask = activate_mask(theta_m, activation_);
  ComplexGrid o = to_complex(mask);
  fft2(o);

  const RealGrid intensity = hopkins_->aerial(o);
  const SmoLoss loss = evaluate_smo_loss(intensity, target_, resist_,
                                         weights_, pw_, /*want_backprop=*/true);

  SmoGradient out;
  out.loss = loss.total;
  out.l2 = loss.l2;
  out.pvb = loss.pvb;

  const RealGrid& dldi = loss.dl_di;
  const auto& kernels = hopkins_->socs().kernels();
  const auto& band = hopkins_->socs().band();
  ThreadPool* pool = hopkins_->pool();
  const std::size_t slots = reduction_slots(kernels.size());
  std::vector<ComplexGrid> go_partial(slots, ComplexGrid(n, n));

  auto task = [&](std::size_t s) {
    const std::size_t begin = s * kernels.size() / slots;
    const std::size_t end = (s + 1) * kernels.size() / slots;
    for (std::size_t q = begin; q < end; ++q) {
      const ComplexGrid a = hopkins_->field(o, q);
      const double scale = 2.0 * kernels[q].weight;
      ComplexGrid ga(n, n);
      for (std::size_t i = 0; i < ga.size(); ++i) {
        ga[i] = scale * dldi[i] * a[i];
      }
      const ComplexGrid gb = ifft2_adjoint(ga);
      ComplexGrid& go = go_partial[s];
      for (std::size_t b = 0; b < band.size(); ++b) {
        go[band[b]] += std::conj(kernels[q].values[b]) * gb[band[b]];
      }
    }
  };
  if (pool != nullptr && slots > 1) {
    pool->parallel_for(slots, task);
  } else {
    for (std::size_t s = 0; s < slots; ++s) task(s);
  }

  ComplexGrid go = std::move(go_partial[0]);
  for (std::size_t s = 1; s < slots; ++s) go += go_partial[s];
  const RealGrid gm = real_part(fft2_adjoint(go));
  const RealGrid dact =
      mask_activation_derivative(theta_m, mask, activation_);
  out.grad_theta_m = gm * dact;
  return out;
}

}  // namespace bismo
