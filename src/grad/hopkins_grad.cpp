#include "grad/hopkins_grad.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "fft/fft.hpp"
#include "math/grid_ops.hpp"
#include "sim/imaging_model.hpp"

namespace bismo {

HopkinsGradientEngine::HopkinsGradientEngine(const HopkinsImaging& hopkins,
                                             const RealGrid& target,
                                             ResistModel resist,
                                             ActivationConfig activation,
                                             LossWeights weights,
                                             ProcessWindow pw)
    : hopkins_(&hopkins),
      target_(target),
      resist_(resist),
      activation_(activation),
      weights_(weights),
      pw_(pw) {
  const std::size_t n = hopkins.optics().mask_dim;
  if (target_.rows() != n || target_.cols() != n) {
    throw std::invalid_argument("HopkinsGradientEngine: target shape mismatch");
  }
}

RealGrid HopkinsGradientEngine::aerial(const RealGrid& theta_m) const {
  const RealGrid mask = activate_mask(theta_m, activation_);
  ComplexGrid o = to_complex(mask);
  fft2(o);
  return hopkins_->aerial(o);
}

SmoLoss HopkinsGradientEngine::loss_only(const RealGrid& theta_m) const {
  return evaluate_smo_loss(aerial(theta_m), target_, resist_, weights_, pw_,
                           /*want_backprop=*/false);
}

SmoGradient HopkinsGradientEngine::evaluate(const RealGrid& theta_m) const {
  const std::size_t n = hopkins_->optics().mask_dim;
  const RealGrid mask = activate_mask(theta_m, activation_);
  ComplexGrid o = to_complex(mask);
  fft2(o);

  // Capture each kernel's coherent field during the forward pass so the
  // backward sweep reuses it (fused pipeline mode; see FieldCaptureScope).
  // Narrow-band models take the band-restricted direct adjoint instead
  // and never read the cache.
  sim::FieldCaptureScope capture(hopkins_->workspaces(),
                                 hopkins_->components(),
                                 !sim::adjoint_uses_band_conv(*hopkins_));
  const RealGrid intensity = hopkins_->aerial(o);
  const SmoLoss loss = evaluate_smo_loss(intensity, target_, resist_,
                                         weights_, pw_, /*want_backprop=*/true);

  SmoGradient out;
  out.loss = loss.total;
  out.l2 = loss.l2;
  out.pvb = loss.pvb;

  const RealGrid& dldi = loss.dl_di;
  const auto& kernels = hopkins_->socs().kernels();

  // Backward sweep through the unified engine layer: identical adjoint
  // structure to the Abbe engine with kernels in place of source points
  // (sim::adjoint_pass handles pooling, workspaces, and determinism).
  std::vector<sim::AdjointItem> items(kernels.size());
  for (std::size_t q = 0; q < kernels.size(); ++q) {
    items[q].component = static_cast<std::uint32_t>(q);
    items[q].scale = 2.0 * kernels[q].weight;
    items[q].mask = true;
  }
  ComplexGrid go = sim::adjoint_pass(*hopkins_, o, dldi, items);
  if (go.empty()) go = ComplexGrid(n, n);  // rank-0 decomposition
  const RealGrid gm = real_part(fft2_adjoint(go));
  const RealGrid dact =
      mask_activation_derivative(theta_m, mask, activation_);
  out.grad_theta_m = gm * dact;
  return out;
}

}  // namespace bismo
