#include "grad/hvp.hpp"

#include <stdexcept>

#include "math/grid_ops.hpp"

namespace bismo {
namespace {

/// Perturbation step: eps_scale normalized by ||v||; zero signals a zero v.
double step_size(const RealGrid& v, double eps_scale) {
  const double n = norm2(v);
  if (n < 1e-30) return 0.0;
  return eps_scale / n;
}

}  // namespace

const RealGrid& HypergradientOps::perturbed(const RealGrid& theta_j,
                                            double step,
                                            const RealGrid& v) const {
  if (!theta_j.same_shape(v)) {
    throw std::invalid_argument("HypergradientOps: probe shape mismatch");
  }
  probe_ = theta_j;
  for (std::size_t i = 0; i < probe_.size(); ++i) probe_[i] += step * v[i];
  return probe_;
}

RealGrid HypergradientOps::hvp_source(const RealGrid& theta_m,
                                      const RealGrid& theta_j,
                                      const RealGrid& v) const {
  const double eps = step_size(v, eps_scale_);
  if (eps == 0.0) return RealGrid(theta_j.rows(), theta_j.cols(), 0.0);
  GradRequest req;
  req.mask = false;
  req.source = true;
  const SmoGradient plus =
      engine_->evaluate(theta_m, perturbed(theta_j, eps, v), req);
  const SmoGradient minus =
      engine_->evaluate(theta_m, perturbed(theta_j, -eps, v), req);
  evals_ += 2;
  RealGrid out = plus.grad_theta_j - minus.grad_theta_j;
  out *= 1.0 / (2.0 * eps);
  return out;
}

RealGrid HypergradientOps::mixed_mask_source(const RealGrid& theta_m,
                                             const RealGrid& theta_j,
                                             const RealGrid& w) const {
  const double eps = step_size(w, eps_scale_);
  if (eps == 0.0) return RealGrid(theta_m.rows(), theta_m.cols(), 0.0);
  GradRequest req;
  req.mask = true;
  req.source = false;
  const SmoGradient plus =
      engine_->evaluate(theta_m, perturbed(theta_j, eps, w), req);
  const SmoGradient minus =
      engine_->evaluate(theta_m, perturbed(theta_j, -eps, w), req);
  evals_ += 2;
  RealGrid out = plus.grad_theta_m - minus.grad_theta_m;
  out *= 1.0 / (2.0 * eps);
  return out;
}

}  // namespace bismo
