// Hand-derived reverse-mode gradients of the Abbe-based SMO loss
// (paper Sec. 3.1-3.2) with respect to both parameter grids.
//
// Forward chain (per Table 1, Eqs. 2, 6-9):
//   theta_M --sigmoid--> M --FFT--> O --per-point pass-band + IFFT--> A_sigma
//   theta_J --sigmoid--> J;   S = sum_sigma j_sigma |A_sigma|^2;  W = sum j
//   I = S / W;   I_c = d_c^2 I;   Z_c = sigmoid(beta (I_c - I_tr));  Lsmo.
//
// Reverse chain (Wirtinger calculus through the FFTs):
//   dL/dS      = dL/dI / W
//   dL/dj_s    = sum_xy dL/dI * (|A_s|^2 - I) / W          (normalization!)
//   g_{A_s}    = 2 (j_s / W) * dL/dI .* A_s                (dL/d conj(A))
//   g_{B_s}    = ifft2_adjoint(g_{A_s})                    (B_s = H_s .* O)
//   g_O       += conj(H_s) .* g_{B_s}   restricted to the pass-band
//   g_M        = Re(fft2_adjoint(g_O));  g_theta = activation chain rule.
//
// Source gradients are accumulated over *all* valid sigma points (a point
// with j ~ 0 still needs |A_sigma|^2 so SO can revive it); mask gradients
// skip points whose weight is below `source_cutoff` since their
// contribution is proportional to j_sigma.
#ifndef BISMO_GRAD_ABBE_GRAD_HPP
#define BISMO_GRAD_ABBE_GRAD_HPP

#include "grad/loss.hpp"
#include "litho/abbe.hpp"
#include "litho/activation.hpp"
#include "litho/resist.hpp"
#include "math/grid2d.hpp"

namespace bismo {

/// Loss value plus requested parameter gradients.
struct SmoGradient {
  double loss = 0.0;      ///< Lsmo = gamma*L2 + eta*Lpvb
  double l2 = 0.0;        ///< unweighted nominal term
  double pvb = 0.0;       ///< unweighted PVB term
  RealGrid grad_theta_m;  ///< dL/dtheta_M (empty when not requested)
  RealGrid grad_theta_j;  ///< dL/dtheta_J (empty when not requested)
};

/// Which gradients a call should produce.
struct GradRequest {
  bool mask = true;
  bool source = true;
};

/// Differentiable Abbe-based SMO objective: forward evaluation and manual
/// adjoint gradients.  Immutable and thread-compatible (evaluations are
/// internally parallel over source points via the engine's pool).
class AbbeGradientEngine {
 public:
  /// `abbe` is borrowed and must outlive the engine.
  AbbeGradientEngine(const AbbeImaging& abbe, const RealGrid& target,
                     ResistModel resist = {}, ActivationConfig activation = {},
                     LossWeights weights = {}, ProcessWindow pw = {},
                     double source_cutoff = 1e-9);

  /// Loss and gradients at (theta_M, theta_J).
  SmoGradient evaluate(const RealGrid& theta_m, const RealGrid& theta_j,
                       const GradRequest& request = {}) const;

  /// Loss only (no gradients; cheaper backward pass skipped entirely).
  SmoLoss loss_only(const RealGrid& theta_m, const RealGrid& theta_j) const;

  /// Normalized aerial intensity for the given parameters (for metrics and
  /// visualization; applies activations internally).
  RealGrid aerial(const RealGrid& theta_m, const RealGrid& theta_j) const;

  const AbbeImaging& abbe() const noexcept { return *abbe_; }
  const RealGrid& target() const noexcept { return target_; }
  const ResistModel& resist() const noexcept { return resist_; }
  const ActivationConfig& activation() const noexcept { return activation_; }
  const LossWeights& weights() const noexcept { return weights_; }
  const ProcessWindow& process_window() const noexcept { return pw_; }

 private:
  const AbbeImaging* abbe_;
  RealGrid target_;
  ResistModel resist_;
  ActivationConfig activation_;
  LossWeights weights_;
  ProcessWindow pw_;
  double source_cutoff_;
};

}  // namespace bismo

#endif  // BISMO_GRAD_ABBE_GRAD_HPP
