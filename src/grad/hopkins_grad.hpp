// Reverse-mode mask gradients through the Hopkins/SOCS model (Eq. 4) --
// the gradient path used by the Hopkins-based MO baselines (NILT proxy,
// DAC23-MILT proxy) and by the Abbe-Hopkins hybrid AM-SMO [13].
//
// Identical adjoint structure to the Abbe engine with source points
// replaced by SOCS kernels:
//   g_{A_q} = 2 kappa_q * dL/dI .* A_q
//   g_O    += conj(phi_q) .* ifft2_adjoint(g_{A_q})   over the band
//   g_M     = Re(fft2_adjoint(g_O)),  then the activation chain rule.
// Source gradients do not exist here: the TCC absorbs the source (the very
// limitation -- Sec. 2.1 -- that motivates Abbe-based SMO).
#ifndef BISMO_GRAD_HOPKINS_GRAD_HPP
#define BISMO_GRAD_HOPKINS_GRAD_HPP

#include "grad/abbe_grad.hpp"
#include "grad/loss.hpp"
#include "litho/activation.hpp"
#include "litho/hopkins.hpp"
#include "litho/resist.hpp"
#include "math/grid2d.hpp"

namespace bismo {

/// Differentiable Hopkins-based MO objective (mask gradients only).
class HopkinsGradientEngine {
 public:
  /// `hopkins` is borrowed and must outlive the engine.
  HopkinsGradientEngine(const HopkinsImaging& hopkins, const RealGrid& target,
                        ResistModel resist = {},
                        ActivationConfig activation = {},
                        LossWeights weights = {}, ProcessWindow pw = {});

  /// Loss and dL/dtheta_M at theta_M.
  SmoGradient evaluate(const RealGrid& theta_m) const;

  /// Loss only.
  SmoLoss loss_only(const RealGrid& theta_m) const;

  /// Normalized aerial intensity (activation applied internally).
  RealGrid aerial(const RealGrid& theta_m) const;

  const HopkinsImaging& hopkins() const noexcept { return *hopkins_; }
  const RealGrid& target() const noexcept { return target_; }

 private:
  const HopkinsImaging* hopkins_;
  RealGrid target_;
  ResistModel resist_;
  ActivationConfig activation_;
  LossWeights weights_;
  ProcessWindow pw_;
};

}  // namespace bismo

#endif  // BISMO_GRAD_HOPKINS_GRAD_HPP
