// Second-order building blocks for the bilevel hypergradient (Sec. 3.2):
//
//   HVP:   [d2 Lso / dthetaJ dthetaJ] v
//   mixed: [d2 Lso / dthetaM dthetaJ] w  (a vector over theta_M)
//
// computed by central finite differences *of analytic gradients* -- the
// standard practice of refs. [14, 15] the paper builds on:
//
//   HVP(v)   ~ [ gJ(thetaJ + eps v) - gJ(thetaJ - eps v) ] / (2 eps)
//   mixed(w) ~ [ gM(thetaJ + eps w) - gM(thetaJ - eps w) ] / (2 eps)
//
// with eps scaled inversely to ||v|| so the perturbation magnitude is
// controlled.  Each product costs exactly two gradient evaluations and
// never materializes a Hessian.
#ifndef BISMO_GRAD_HVP_HPP
#define BISMO_GRAD_HVP_HPP

#include "grad/abbe_grad.hpp"
#include "math/grid2d.hpp"

namespace bismo {

/// Finite-difference second-order operator factory over an Abbe SMO
/// objective.  Lso == Lmo == Lsmo (paper Eq. 9), so the same engine serves
/// both levels.
///
/// Not reentrant: the const methods reuse an internal probe buffer (and the
/// underlying engine shares per-slot workspaces), matching the one-
/// evaluation-at-a-time contract of the whole engine stack.  Give each
/// concurrent solve its own HypergradientOps *and* engine/workspace set.
class HypergradientOps {
 public:
  /// `engine` is borrowed and must outlive this object.  `eps_scale` is the
  /// numerator of the perturbation step eps = eps_scale / ||v||.
  explicit HypergradientOps(const AbbeGradientEngine& engine,
                            double eps_scale = 1e-2)
      : engine_(&engine), eps_scale_(eps_scale) {}

  /// [d2 Lso / dthetaJ^2] * v at (theta_m, theta_j).
  /// Returns a zero grid when v is (numerically) zero.
  RealGrid hvp_source(const RealGrid& theta_m, const RealGrid& theta_j,
                      const RealGrid& v) const;

  /// [d2 Lso / dthetaM dthetaJ] * w at (theta_m, theta_j); the mixed
  /// Jacobian-vector product of Eqs. 13/16/18, shaped like theta_M.
  RealGrid mixed_mask_source(const RealGrid& theta_m, const RealGrid& theta_j,
                             const RealGrid& w) const;

  /// Gradient-evaluation count consumed so far (for the TAT accounting the
  /// runtime benches report).
  long evaluations() const noexcept { return evals_; }

 private:
  /// theta_j + step * v into the reused probe buffer (no allocation after
  /// the first call; the engine does not retain the reference).
  const RealGrid& perturbed(const RealGrid& theta_j, double step,
                            const RealGrid& v) const;

  const AbbeGradientEngine* engine_;
  double eps_scale_;
  mutable long evals_ = 0;
  mutable RealGrid probe_;  ///< reused perturbation buffer
};

}  // namespace bismo

#endif  // BISMO_GRAD_HVP_HPP
