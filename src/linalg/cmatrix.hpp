// Small dense complex matrix used by the Hopkins/SOCS pipeline.
//
// The TCC Gram matrix G = A A^H (one row/column per effective source point)
// is a few-hundred-square Hermitian matrix; this container plus the Jacobi
// eigensolver in hermitian_eig.hpp is all the dense linear algebra the
// library needs.
#ifndef BISMO_LINALG_CMATRIX_HPP
#define BISMO_LINALG_CMATRIX_HPP

#include <cassert>
#include <complex>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace bismo {

/// Dense row-major complex matrix with value semantics.
class CMatrix {
 public:
  using value_type = std::complex<double>;

  CMatrix() = default;

  /// rows x cols zero matrix.
  CMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols) {}

  /// n x n identity.
  static CMatrix identity(std::size_t n) {
    CMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  value_type& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const value_type& operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Matrix product this * other.
  CMatrix multiply(const CMatrix& other) const {
    if (cols_ != other.rows_) {
      throw std::invalid_argument("CMatrix::multiply: dimension mismatch");
    }
    CMatrix out(rows_, other.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t k = 0; k < cols_; ++k) {
        const value_type a = (*this)(i, k);
        if (a == value_type{}) continue;
        for (std::size_t j = 0; j < other.cols_; ++j) {
          out(i, j) += a * other(k, j);
        }
      }
    }
    return out;
  }

  /// Conjugate transpose.
  CMatrix hermitian() const {
    CMatrix out(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t j = 0; j < cols_; ++j) out(j, i) = std::conj((*this)(i, j));
    }
    return out;
  }

  /// Frobenius norm of the off-diagonal part (square matrices).
  double offdiag_norm() const {
    double acc = 0.0;
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t j = 0; j < cols_; ++j) {
        if (i != j) acc += std::norm((*this)(i, j));
      }
    }
    return std::sqrt(acc);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<value_type> data_;
};

}  // namespace bismo

#endif  // BISMO_LINALG_CMATRIX_HPP
