#include "linalg/hermitian_eig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace bismo {
namespace {

/// One two-sided unitary rotation zeroing A(p,q) and A(q,p), accumulating
/// the rotation into V.  The unitary is U = D * R with D = diag(1, e^{-ia})
/// absorbing the phase of A(p,q) = r e^{ia} and R the real Jacobi rotation.
void rotate(CMatrix& a, CMatrix& v, std::size_t p, std::size_t q) {
  const std::complex<double> apq = a(p, q);
  const double r = std::abs(apq);
  if (r == 0.0) return;
  const std::complex<double> phase = apq / r;  // e^{i alpha}
  const double app = a(p, p).real();
  const double aqq = a(q, q).real();
  const double tau = (aqq - app) / (2.0 * r);
  double t = 1.0;
  if (tau != 0.0) {
    const double sign = tau > 0.0 ? 1.0 : -1.0;
    t = sign / (std::abs(tau) + std::sqrt(1.0 + tau * tau));
  }
  const double c = 1.0 / std::sqrt(1.0 + t * t);
  const double s = t * c;

  // Column entries of U restricted to the (p,q) plane:
  //   U[p][p] = c            U[p][q] = s
  //   U[q][p] = -s*conj(ph)  U[q][q] = c*conj(ph)
  const std::complex<double> upp(c, 0.0);
  const std::complex<double> upq(s, 0.0);
  const std::complex<double> uqp = -s * std::conj(phase);
  const std::complex<double> uqq = c * std::conj(phase);

  const std::size_t n = a.rows();
  // A <- U^H A U: first columns (A U), then rows (U^H A).
  for (std::size_t k = 0; k < n; ++k) {
    const std::complex<double> akp = a(k, p);
    const std::complex<double> akq = a(k, q);
    a(k, p) = akp * upp + akq * uqp;
    a(k, q) = akp * upq + akq * uqq;
  }
  for (std::size_t k = 0; k < n; ++k) {
    const std::complex<double> apk = a(p, k);
    const std::complex<double> aqk = a(q, k);
    a(p, k) = std::conj(upp) * apk + std::conj(uqp) * aqk;
    a(q, k) = std::conj(upq) * apk + std::conj(uqq) * aqk;
  }
  // Clean the rotated pair explicitly (they are zero analytically).
  a(p, q) = 0.0;
  a(q, p) = 0.0;
  a(p, p) = a(p, p).real();
  a(q, q) = a(q, q).real();

  // V <- V U (accumulate eigenvectors).
  for (std::size_t k = 0; k < n; ++k) {
    const std::complex<double> vkp = v(k, p);
    const std::complex<double> vkq = v(k, q);
    v(k, p) = vkp * upp + vkq * uqp;
    v(k, q) = vkp * upq + vkq * uqq;
  }
}

double matrix_norm(const CMatrix& a) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) acc += std::norm(a(i, j));
  }
  return std::sqrt(acc);
}

}  // namespace

HermitianEig hermitian_eig(CMatrix a, double tol, int max_sweeps) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("hermitian_eig: matrix must be square");
  }
  const std::size_t n = a.rows();
  CMatrix v = CMatrix::identity(n);
  if (n > 0) {
    const double scale = matrix_norm(a);
    const double threshold = tol * std::max(scale, 1e-300);
    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
      if (a.offdiag_norm() <= threshold) break;
      for (std::size_t p = 0; p + 1 < n; ++p) {
        for (std::size_t q = p + 1; q < n; ++q) {
          if (std::abs(a(p, q)) > threshold / static_cast<double>(n)) {
            rotate(a, v, p, q);
          }
        }
      }
    }
  }

  HermitianEig out;
  out.values.resize(n);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = a(i, i).real();
  std::sort(order.begin(), order.end(),
            [&diag](std::size_t x, std::size_t y) { return diag[x] > diag[y]; });
  out.vectors = CMatrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = diag[order[j]];
    for (std::size_t i = 0; i < n; ++i) out.vectors(i, j) = v(i, order[j]);
  }
  return out;
}

}  // namespace bismo
