#include "linalg/cg.hpp"

#include <cmath>
#include <stdexcept>

#include "math/grid_ops.hpp"

namespace bismo {

CgResult conjugate_gradient(
    const std::function<RealGrid(const RealGrid&)>& apply, const RealGrid& b,
    const RealGrid& x0, const CgOptions& options) {
  if (!b.same_shape(x0)) {
    throw std::invalid_argument("conjugate_gradient: b/x0 shape mismatch");
  }
  auto apply_damped = [&](const RealGrid& v) {
    RealGrid av = apply(v);
    if (options.damping != 0.0) av += v * options.damping;
    return av;
  };

  CgResult result;
  result.x = x0;
  RealGrid r = b - apply_damped(result.x);
  RealGrid p = r;
  double rs = dot(r, r);
  const double b_norm = std::max(norm2(b), 1e-300);

  for (int it = 0; it < options.max_iterations; ++it) {
    if (std::sqrt(rs) / b_norm <= options.tolerance) {
      result.converged = true;
      break;
    }
    const RealGrid ap = apply_damped(p);
    const double p_ap = dot(p, ap);
    if (p_ap <= 0.0 || !std::isfinite(p_ap)) {
      // Non-positive curvature: the Hessian is indefinite along p (the case
      // behind CG's large variance in the paper's Fig. 5 ablation).  Stop
      // with the current iterate rather than stepping along a descent-less
      // direction.
      break;
    }
    const double alpha = rs / p_ap;
    result.x = axpy(result.x, alpha, p);
    r = axpy(r, -alpha, ap);
    const double rs_next = dot(r, r);
    const double beta = rs_next / rs;
    p = axpy(r, beta, p);
    rs = rs_next;
    ++result.iterations;
  }
  result.residual_norm = std::sqrt(rs);
  if (std::sqrt(rs) / b_norm <= options.tolerance) result.converged = true;
  return result;
}

}  // namespace bismo
