// Matrix-free conjugate-gradient solver on Grid2D-shaped vector spaces.
//
// BiSMO-CG (Sec. 3.2.3, Eq. 17-18) solves  [d2Lso/dthetaJ^2] w = dLmo/dthetaJ
// with the Hessian available only through Hessian-vector products.  This CG
// implementation takes the operator as a callable, supports warm starting
// (Algorithm 2 line 10 re-initializes w0 from the previous outer step) and
// optional Tikhonov damping  (H + damping*I) w = b  for the indefinite-
// Hessian case responsible for CG's instability in the paper's ablation.
#ifndef BISMO_LINALG_CG_HPP
#define BISMO_LINALG_CG_HPP

#include <cstddef>
#include <functional>

#include "math/grid2d.hpp"

namespace bismo {

/// Outcome of a conjugate-gradient solve.
struct CgResult {
  RealGrid x;              ///< approximate solution
  double residual_norm = 0.0;  ///< ||b - A x|| at exit
  int iterations = 0;          ///< CG steps actually taken
  bool converged = false;      ///< residual below tolerance
};

/// Options controlling the CG iteration.
struct CgOptions {
  int max_iterations = 5;   ///< paper: K = 5
  double tolerance = 1e-10; ///< relative residual ||r||/||b|| stop threshold
  double damping = 0.0;     ///< Tikhonov term: solves (A + damping*I) x = b
};

/// Solve A x = b where `apply` computes A*v for an implicitly represented
/// symmetric (ideally positive-definite) operator.  `x0` provides the warm
/// start; pass a zero grid when none is available.
/// Shapes of b and x0 must match; throws std::invalid_argument otherwise.
CgResult conjugate_gradient(
    const std::function<RealGrid(const RealGrid&)>& apply, const RealGrid& b,
    const RealGrid& x0, const CgOptions& options = {});

}  // namespace bismo

#endif  // BISMO_LINALG_CG_HPP
