// Cyclic-Jacobi eigendecomposition of Hermitian matrices.
//
// Used to diagonalize the source-side Gram matrix G = A A^H in the
// Hopkins/SOCS pipeline (Sec. 2.1 of the paper, Eq. 4): its eigenpairs map
// exactly to the SOCS kernel weights kappa_q and (through A^H) the kernels
// phi_q, replacing the truncated SVD of the full TCC without ever forming
// the quartic-size TCC tensor.
#ifndef BISMO_LINALG_HERMITIAN_EIG_HPP
#define BISMO_LINALG_HERMITIAN_EIG_HPP

#include <vector>

#include "linalg/cmatrix.hpp"

namespace bismo {

/// Eigendecomposition A = V diag(lambda) V^H of a Hermitian matrix.
/// Eigenvalues are sorted in descending order; column j of `vectors` is the
/// unit eigenvector for `values[j]`.
struct HermitianEig {
  std::vector<double> values;
  CMatrix vectors;
};

/// Diagonalize a Hermitian matrix by cyclic Jacobi rotations.
///
/// `a` must be square and Hermitian (the strict lower triangle is assumed to
/// mirror the upper conjugate-transposed; minor asymmetry from floating
/// point accumulation is tolerated).  Convergence: off-diagonal Frobenius
/// norm below `tol` times the matrix norm, or `max_sweeps` full sweeps.
/// Throws std::invalid_argument for non-square input.
HermitianEig hermitian_eig(CMatrix a, double tol = 1e-12,
                           int max_sweeps = 50);

}  // namespace bismo

#endif  // BISMO_LINALG_HERMITIAN_EIG_HPP
