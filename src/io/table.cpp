#include "io/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace bismo {

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TablePrinter: cell count mismatch");
  }
  rows_.push_back(Row{false, std::move(cells)});
}

void TablePrinter::add_separator() { rows_.push_back(Row{true, {}}); }

std::string TablePrinter::num(double v, int digits) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(digits) << v;
  return ss.str();
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }
  auto print_line = [&] {
    out << '+';
    for (std::size_t w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
          << cells[c] << " |";
    }
    out << '\n';
  };
  print_line();
  print_cells(headers_);
  print_line();
  for (const auto& row : rows_) {
    if (row.separator) {
      print_line();
    } else {
      print_cells(row.cells);
    }
  }
  print_line();
}

}  // namespace bismo
