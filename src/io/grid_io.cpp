#include "io/grid_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace bismo {
namespace {

constexpr char kMagic[4] = {'B', 'S', 'M', 'G'};
constexpr std::uint32_t kVersion = 1;

}  // namespace

void save_grid(const std::string& path, const RealGrid& grid) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_grid: cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  const std::uint32_t version = kVersion;
  const auto rows = static_cast<std::uint64_t>(grid.rows());
  const auto cols = static_cast<std::uint64_t>(grid.cols());
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  out.write(reinterpret_cast<const char*>(grid.data()),
            static_cast<std::streamsize>(grid.size() * sizeof(double)));
  if (!out) throw std::runtime_error("save_grid: write failed for " + path);
}

RealGrid load_grid(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_grid: cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_grid: not a BSMG file: " + path);
  }
  std::uint32_t version = 0;
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  if (!in || version != kVersion) {
    throw std::runtime_error("load_grid: unsupported version in " + path);
  }
  if (rows > (1u << 20) || cols > (1u << 20)) {
    throw std::runtime_error("load_grid: implausible dimensions in " + path);
  }
  RealGrid grid(static_cast<std::size_t>(rows),
                static_cast<std::size_t>(cols));
  in.read(reinterpret_cast<char*>(grid.data()),
          static_cast<std::streamsize>(grid.size() * sizeof(double)));
  if (!in) throw std::runtime_error("load_grid: truncated data in " + path);
  return grid;
}

}  // namespace bismo
