// Image output for masks, sources, aerial and resist images (Figure 4 of
// the paper shows source/mask/resist panels; examples/smo_full_flow dumps
// the same panels as PGM/PPM files), plus a PGM reader for round-trip tests.
#ifndef BISMO_IO_IMAGE_IO_HPP
#define BISMO_IO_IMAGE_IO_HPP

#include <string>

#include "math/grid2d.hpp"

namespace bismo {

/// Write a real grid as an 8-bit binary PGM, mapping [lo, hi] to [0, 255]
/// (values outside the range are clamped).  Throws std::runtime_error when
/// the file cannot be written.
void write_pgm(const std::string& path, const RealGrid& image, double lo = 0.0,
               double hi = 1.0);

/// Write a real grid as PGM auto-scaled to its own [min, max] range.
void write_pgm_autoscale(const std::string& path, const RealGrid& image);

/// Read an 8-bit binary PGM back into a grid with values in [0, 1].
/// Throws std::runtime_error on malformed input.
RealGrid read_pgm(const std::string& path);

/// Write a false-color PPM comparing a printed resist `z` against the target
/// `target`: white = match (both 1), black = match (both 0), red = missing
/// pattern (target only), blue = extra pattern (resist only).
void write_compare_ppm(const std::string& path, const RealGrid& z,
                       const RealGrid& target);

}  // namespace bismo

#endif  // BISMO_IO_IMAGE_IO_HPP
