// Fixed-width ASCII table rendering for the benchmark harness, so the bench
// binaries print rows in the same layout as the paper's Tables 2-4.
#ifndef BISMO_IO_TABLE_HPP
#define BISMO_IO_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace bismo {

/// Collects rows of string cells and renders them with aligned columns.
class TablePrinter {
 public:
  /// Define the column headers.
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Append one row; must have the same number of cells as headers.
  /// Throws std::invalid_argument otherwise.
  void add_row(std::vector<std::string> cells);

  /// Append a horizontal separator line.
  void add_separator();

  /// Format a double with `digits` decimal places.
  static std::string num(double v, int digits = 1);

  /// Render the table to `out`.
  void print(std::ostream& out) const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

}  // namespace bismo

#endif  // BISMO_IO_TABLE_HPP
