// Minimal CSV emission for the figure-series benches (Fig. 3 convergence
// curves, Fig. 5 mean/STD bands) so results can be re-plotted directly.
#ifndef BISMO_IO_CSV_HPP
#define BISMO_IO_CSV_HPP

#include <fstream>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace bismo {

/// Streams rows of a CSV table to any std::ostream.
///
/// Fields containing commas, quotes or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Write to an externally owned stream (e.g. std::cout).
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Write the header row.
  void header(const std::vector<std::string>& names) { row_strings(names); }

  /// Write a row of doubles (formatted with max_digits10 precision).
  void row(const std::vector<double>& values);

  /// Write a row of preformatted strings.
  void row_strings(const std::vector<std::string>& fields);

 private:
  static std::string escape(const std::string& field);
  std::ostream* out_;
};

/// Convenience: write a whole table of named columns to a file.
/// `columns` maps name -> series; all series must have equal length.
/// Throws std::invalid_argument on ragged input, std::runtime_error on I/O
/// failure.
void write_csv(const std::string& path,
               const std::vector<std::string>& names,
               const std::vector<std::vector<double>>& columns);

}  // namespace bismo

#endif  // BISMO_IO_CSV_HPP
