#include "io/json.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace bismo {

std::string JsonWriter::quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

void JsonWriter::newline_indent() {
  *out_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_);
       ++i) {
    *out_ << ' ';
  }
}

void JsonWriter::prepare_value() {
  if (stack_.empty()) {
    if (wrote_root_) {
      throw std::logic_error("JsonWriter: multiple root values");
    }
    return;
  }
  if (stack_.back() == Scope::kObject && !key_pending_) {
    throw std::logic_error("JsonWriter: value inside object requires key()");
  }
  if (!key_pending_) {
    if (has_items_.back()) *out_ << ',';
    newline_indent();
    has_items_.back() = true;
  }
  key_pending_ = false;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (stack_.empty() || stack_.back() != Scope::kObject) {
    throw std::logic_error("JsonWriter: key() outside an object");
  }
  if (key_pending_) {
    throw std::logic_error("JsonWriter: key() after key()");
  }
  if (has_items_.back()) *out_ << ',';
  newline_indent();
  has_items_.back() = true;
  *out_ << quote(name) << ": ";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  prepare_value();
  *out_ << '{';
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Scope::kObject || key_pending_) {
    throw std::logic_error("JsonWriter: mismatched end_object()");
  }
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  *out_ << '}';
  if (stack_.empty()) {
    wrote_root_ = true;
    *out_ << '\n';
  }
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prepare_value();
  *out_ << '[';
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Scope::kArray) {
    throw std::logic_error("JsonWriter: mismatched end_array()");
  }
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  *out_ << ']';
  if (stack_.empty()) {
    wrote_root_ = true;
    *out_ << '\n';
  }
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  prepare_value();
  *out_ << quote(v);
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  prepare_value();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.*g",
                std::numeric_limits<double>::max_digits10, v);
  *out_ << buf;
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(long v) {
  prepare_value();
  *out_ << v;
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::size_t v) {
  prepare_value();
  *out_ << v;
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  prepare_value();
  *out_ << (v ? "true" : "false");
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  prepare_value();
  *out_ << "null";
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

}  // namespace bismo
