// Checkpointing for parameter grids: a small self-describing binary format
// ("BSMG") storing shape + IEEE-754 doubles, so optimized masks/sources can
// be saved, reloaded and resumed exactly (bit-identical round trip).
#ifndef BISMO_IO_GRID_IO_HPP
#define BISMO_IO_GRID_IO_HPP

#include <string>

#include "math/grid2d.hpp"

namespace bismo {

/// Write a real grid as a BSMG binary checkpoint.
/// Throws std::runtime_error on I/O failure.
void save_grid(const std::string& path, const RealGrid& grid);

/// Read a BSMG checkpoint.  Throws std::runtime_error on malformed input.
RealGrid load_grid(const std::string& path);

}  // namespace bismo

#endif  // BISMO_IO_GRID_IO_HPP
