#include "io/csv.hpp"

#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace bismo {

void CsvWriter::row(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) {
    std::ostringstream ss;
    ss << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
    fields.push_back(ss.str());
  }
  row_strings(fields);
}

void CsvWriter::row_strings(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) (*out_) << ',';
    (*out_) << escape(fields[i]);
  }
  (*out_) << '\n';
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (char ch : field) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

void write_csv(const std::string& path, const std::vector<std::string>& names,
               const std::vector<std::vector<double>>& columns) {
  if (names.size() != columns.size()) {
    throw std::invalid_argument("write_csv: names/columns count mismatch");
  }
  const std::size_t len = columns.empty() ? 0 : columns.front().size();
  for (const auto& col : columns) {
    if (col.size() != len) {
      throw std::invalid_argument("write_csv: ragged columns");
    }
  }
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_csv: cannot open " + path);
  CsvWriter writer(out);
  writer.header(names);
  for (std::size_t r = 0; r < len; ++r) {
    std::vector<double> row(columns.size());
    for (std::size_t c = 0; c < columns.size(); ++c) row[c] = columns[c][r];
    writer.row(row);
  }
  if (!out) throw std::runtime_error("write_csv: write failed for " + path);
}

}  // namespace bismo
