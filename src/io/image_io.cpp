#include "io/image_io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "math/grid_ops.hpp"

namespace bismo {
namespace {

std::uint8_t quantize(double v, double lo, double hi) {
  if (hi <= lo) return 0;
  const double t = std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
  return static_cast<std::uint8_t>(t * 255.0 + 0.5);
}

}  // namespace

void write_pgm(const std::string& path, const RealGrid& image, double lo,
               double hi) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_pgm: cannot open " + path);
  out << "P5\n" << image.cols() << " " << image.rows() << "\n255\n";
  std::vector<std::uint8_t> row(image.cols());
  for (std::size_t r = 0; r < image.rows(); ++r) {
    for (std::size_t c = 0; c < image.cols(); ++c) {
      row[c] = quantize(image(r, c), lo, hi);
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
  if (!out) throw std::runtime_error("write_pgm: write failed for " + path);
}

void write_pgm_autoscale(const std::string& path, const RealGrid& image) {
  write_pgm(path, image, min_value(image), max_value(image));
}

RealGrid read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_pgm: cannot open " + path);
  std::string magic;
  in >> magic;
  if (magic != "P5") throw std::runtime_error("read_pgm: not a binary PGM");
  // Skip whitespace and comment lines between header tokens.
  auto next_token = [&in]() {
    std::string tok;
    while (in >> tok) {
      if (tok[0] == '#') {
        std::string rest;
        std::getline(in, rest);
        continue;
      }
      return tok;
    }
    throw std::runtime_error("read_pgm: truncated header");
  };
  const std::size_t cols = std::stoul(next_token());
  const std::size_t rows = std::stoul(next_token());
  const int maxval = std::stoi(next_token());
  if (maxval <= 0 || maxval > 255) {
    throw std::runtime_error("read_pgm: unsupported max value");
  }
  // Consume the single whitespace that terminates the header (PGM spec),
  // tolerating two real-world deviations the strict `in.get()` corrupted:
  //   * CRLF line endings -- "255\r\n" is one line terminator, not a '\r'
  //     terminator followed by a '\n' raster byte;
  //   * a trailing comment -- "255 # maxval\n" ends at that newline.
  // Raster bytes that happen to be whitespace-valued are never consumed:
  // after a space/tab terminator only a '#' (overwhelmingly a comment,
  // never legitimately the first pixel of a space-terminated header)
  // extends the header.
  const auto skip_comment_line = [&in]() {
    std::string rest;
    std::getline(in, rest);
  };
  int ch = in.get();
  if (ch == ' ' || ch == '\t') {
    if (in.peek() == '#') ch = in.get();  // "255 # comment\n"
  }
  if (ch == '#') {
    skip_comment_line();  // header ends at the comment's newline
  } else if (ch == '\r') {
    if (in.peek() == '\n') in.get();  // CRLF counts as one terminator
  }
  // Any other terminator ('\n', or the single space/tab above) is already
  // consumed; raster data starts at the next byte.
  RealGrid image(rows, cols);
  std::vector<std::uint8_t> row(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    in.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row.size()));
    if (!in) throw std::runtime_error("read_pgm: truncated pixel data");
    for (std::size_t c = 0; c < cols; ++c) {
      image(r, c) = static_cast<double>(row[c]) / static_cast<double>(maxval);
    }
  }
  return image;
}

void write_compare_ppm(const std::string& path, const RealGrid& z,
                       const RealGrid& target) {
  if (!z.same_shape(target)) {
    throw std::invalid_argument("write_compare_ppm: shape mismatch");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_compare_ppm: cannot open " + path);
  out << "P6\n" << z.cols() << " " << z.rows() << "\n255\n";
  std::vector<std::uint8_t> row(z.cols() * 3);
  for (std::size_t r = 0; r < z.rows(); ++r) {
    for (std::size_t c = 0; c < z.cols(); ++c) {
      const bool printed = z(r, c) > 0.5;
      const bool wanted = target(r, c) > 0.5;
      std::uint8_t rgb[3] = {0, 0, 0};
      if (printed && wanted) {
        rgb[0] = rgb[1] = rgb[2] = 255;
      } else if (wanted) {
        rgb[0] = 220;  // missing pattern: red
      } else if (printed) {
        rgb[2] = 220;  // extra pattern: blue
      }
      row[3 * c + 0] = rgb[0];
      row[3 * c + 1] = rgb[1];
      row[3 * c + 2] = rgb[2];
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
  if (!out) {
    throw std::runtime_error("write_compare_ppm: write failed for " + path);
  }
}

}  // namespace bismo
