// Minimal JSON emission for structured run results (api::JobResult, the
// bench drivers' BENCH_<name>.json files).  Writer-only by design: the
// repository consumes JSON downstream (plotting, dashboards, CI trend
// tracking), it never parses it back.
//
// JsonWriter is a streaming emitter with an explicit object/array stack:
// the caller opens containers, emits keyed or bare values, and closes them;
// commas, quoting (RFC 8259 escapes) and indentation are handled here.
// Doubles are emitted with max_digits10 round-trip precision; non-finite
// doubles become null (JSON has no NaN/Inf).
#ifndef BISMO_IO_JSON_HPP
#define BISMO_IO_JSON_HPP

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace bismo {

/// Streaming JSON writer with correct escaping and comma placement.
///
/// Usage:
///   JsonWriter w(out);
///   w.begin_object();
///   w.key("name").value("run1");
///   w.key("trace").begin_array();
///   w.value(1.0).value(2.0);
///   w.end_array();
///   w.end_object();
///
/// Misuse (closing the wrong container, keys in arrays, values without a
/// key inside an object) throws std::logic_error.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, int indent = 2)
      : out_(&out), indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit the key of the next value; only valid directly inside an object.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(long v);
  JsonWriter& value(int v) { return value(static_cast<long>(v)); }
  JsonWriter& value(std::size_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// True once every opened container has been closed.
  bool complete() const noexcept { return stack_.empty() && wrote_root_; }

  /// Quote + escape a string per RFC 8259 (exposed for tests).
  static std::string quote(const std::string& s);

 private:
  enum class Scope { kObject, kArray };

  void prepare_value();  // comma/newline/indent bookkeeping before a value
  void newline_indent();

  std::ostream* out_;
  int indent_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;  // parallel to stack_
  bool key_pending_ = false;
  bool wrote_root_ = false;
};

}  // namespace bismo

#endif  // BISMO_IO_JSON_HPP
