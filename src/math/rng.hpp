// Deterministic random number generation.
//
// Every stochastic component of the library (layout generators, grad-check
// probes, test fixtures) draws from an explicitly seeded Rng so that a given
// seed reproduces bit-identical runs regardless of thread count or platform
// (std::mt19937_64 and the hand-rolled distributions below are fully
// specified, unlike std::uniform_real_distribution which is
// implementation-defined).
#ifndef BISMO_MATH_RNG_HPP
#define BISMO_MATH_RNG_HPP

#include <cmath>
#include <cstdint>
#include <random>

#include "math/grid2d.hpp"

namespace bismo {

/// Seeded pseudo-random generator with portable distributions.
class Rng {
 public:
  /// Construct from a 64-bit seed.
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() {
    // 53-bit mantissa construction: portable across standard libraries.
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // Rejection-free modulo is fine here: span << 2^64 so bias is negligible
    // for layout synthesis; determinism is what matters.
    return lo + static_cast<std::int64_t>(engine_() % span);
  }

  /// Standard normal via Box-Muller (portable, unlike std::normal_distribution).
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586 * u2;
    spare_ = r * std::sin(theta);
    have_spare_ = true;
    return r * std::cos(theta);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double sigma) { return mean + sigma * normal(); }

  /// Bernoulli draw with probability `p` of true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Grid of i.i.d. uniform [lo, hi) values.
  RealGrid uniform_grid(std::size_t rows, std::size_t cols, double lo,
                        double hi) {
    RealGrid g(rows, cols);
    for (auto& v : g) v = uniform(lo, hi);
    return g;
  }

  /// Grid of i.i.d. normal(0, sigma) values.
  RealGrid normal_grid(std::size_t rows, std::size_t cols, double sigma) {
    RealGrid g(rows, cols);
    for (auto& v : g) v = normal(0.0, sigma);
    return g;
  }

  /// Access the raw engine (for std::shuffle etc.).
  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace bismo

#endif  // BISMO_MATH_RNG_HPP
