// Grid2D: the dense 2-D array that underlies every image-like quantity in
// BiSMO (masks, sources, aerial images, resist images, frequency spectra).
//
// Row-major storage, value semantics, no implicit conversions.  Element type
// is a template parameter; the two instantiations used throughout the
// library are `RealGrid` (double) and `ComplexGrid` (std::complex<double>).
#ifndef BISMO_MATH_GRID2D_HPP
#define BISMO_MATH_GRID2D_HPP

#include <cassert>
#include <complex>
#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

namespace bismo {

/// Dense row-major 2-D array with value semantics.
///
/// Invariant: `data_.size() == rows_ * cols_` at all times.  A
/// default-constructed grid has zero rows and columns and no storage.
template <typename T>
class Grid2D {
 public:
  using value_type = T;

  /// Empty 0x0 grid.
  Grid2D() = default;

  /// `rows` x `cols` grid with every element set to `init`.
  /// Throws std::invalid_argument on a zero-sized dimension with a non-zero
  /// counterpart (a degenerate shape is almost always a caller bug).
  Grid2D(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {
    if ((rows == 0) != (cols == 0)) {
      throw std::invalid_argument("Grid2D: degenerate shape");
    }
  }

  /// Number of rows (y / g dimension).
  std::size_t rows() const noexcept { return rows_; }
  /// Number of columns (x / f dimension).
  std::size_t cols() const noexcept { return cols_; }
  /// Total number of elements.
  std::size_t size() const noexcept { return data_.size(); }
  /// True when the grid holds no elements.
  bool empty() const noexcept { return data_.empty(); }

  /// Unchecked element access (hot paths).
  T& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Bounds-checked element access.  Throws std::out_of_range.
  T& at(std::size_t r, std::size_t c) {
    check(r, c);
    return data_[r * cols_ + c];
  }
  const T& at(std::size_t r, std::size_t c) const {
    check(r, c);
    return data_[r * cols_ + c];
  }

  /// Flat element access in row-major order (for linear algebra on grids).
  T& operator[](std::size_t i) noexcept {
    assert(i < data_.size());
    return data_[i];
  }
  const T& operator[](std::size_t i) const noexcept {
    assert(i < data_.size());
    return data_[i];
  }

  /// Raw storage access (row-major, contiguous).
  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }

  auto begin() noexcept { return data_.begin(); }
  auto end() noexcept { return data_.end(); }
  auto begin() const noexcept { return data_.begin(); }
  auto end() const noexcept { return data_.end(); }

  /// Set every element to `v`.
  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  /// True when shapes match elementwise-compatibly.
  bool same_shape(const Grid2D& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Reshape to `rows` x `cols`, discarding contents (elements become T{}).
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, T{});
  }

  friend bool operator==(const Grid2D& a, const Grid2D& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

  /// In-place elementwise addition.  Shapes must match.
  Grid2D& operator+=(const Grid2D& o) {
    require_same_shape(o);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
    return *this;
  }
  /// In-place elementwise subtraction.  Shapes must match.
  Grid2D& operator-=(const Grid2D& o) {
    require_same_shape(o);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
    return *this;
  }
  /// In-place elementwise (Hadamard) product.  Shapes must match.
  Grid2D& operator*=(const Grid2D& o) {
    require_same_shape(o);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= o.data_[i];
    return *this;
  }
  /// In-place scalar multiply.
  Grid2D& operator*=(T s) {
    for (auto& v : data_) v *= s;
    return *this;
  }

  friend Grid2D operator+(Grid2D a, const Grid2D& b) { return a += b; }
  friend Grid2D operator-(Grid2D a, const Grid2D& b) { return a -= b; }
  friend Grid2D operator*(Grid2D a, const Grid2D& b) { return a *= b; }
  friend Grid2D operator*(Grid2D a, T s) { return a *= s; }
  friend Grid2D operator*(T s, Grid2D a) { return a *= s; }

 private:
  void check(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) {
      throw std::out_of_range("Grid2D::at: index out of range");
    }
  }
  void require_same_shape(const Grid2D& o) const {
    if (!same_shape(o)) {
      throw std::invalid_argument("Grid2D: shape mismatch");
    }
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

/// Real-valued image/parameter grid.
using RealGrid = Grid2D<double>;
/// Complex-valued spectrum/field grid.
using ComplexGrid = Grid2D<std::complex<double>>;

}  // namespace bismo

#endif  // BISMO_MATH_GRID2D_HPP
