#include "math/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bismo {

void RunningStats::push(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile: p outside [0,100]");
  }
  std::sort(xs.begin(), xs.end());
  const double pos = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace bismo
