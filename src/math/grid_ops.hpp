// Free-function elementwise operations and reductions over Grid2D.
//
// These are the vocabulary the gradient code is written in: `map`, `zip`,
// dot products, norms, sigmoid activation (Table 1 of the paper) and its
// derivative.  Everything is shape-checked and allocation-explicit.
#ifndef BISMO_MATH_GRID_OPS_HPP
#define BISMO_MATH_GRID_OPS_HPP

#include <algorithm>
#include <cmath>
#include <complex>
#include <limits>
#include <stdexcept>

#include "fft/kernels/kernel.hpp"
#include "math/grid2d.hpp"

namespace bismo {

/// Apply `fn` to every element, returning a new grid of the mapped type.
template <typename T, typename Fn>
auto map(const Grid2D<T>& g, Fn fn) {
  using R = decltype(fn(std::declval<T>()));
  Grid2D<R> out(g.rows(), g.cols());
  for (std::size_t i = 0; i < g.size(); ++i) out[i] = fn(g[i]);
  return out;
}

/// Combine two same-shaped grids elementwise with `fn`.
template <typename A, typename B, typename Fn>
auto zip(const Grid2D<A>& a, const Grid2D<B>& b, Fn fn) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("zip: shape mismatch");
  }
  using R = decltype(fn(std::declval<A>(), std::declval<B>()));
  Grid2D<R> out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = fn(a[i], b[i]);
  return out;
}

/// Sum of all elements.
template <typename T>
T sum(const Grid2D<T>& g) {
  T acc{};
  for (const auto& v : g) acc += v;
  return acc;
}

/// Real inner product <a, b> = sum a_i * b_i.
inline double dot(const RealGrid& a, const RealGrid& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("dot: shape mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

/// Complex inner product <a, b> = sum conj(a_i) * b_i.
inline std::complex<double> cdot(const ComplexGrid& a, const ComplexGrid& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("cdot: shape mismatch");
  std::complex<double> acc{};
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::conj(a[i]) * b[i];
  return acc;
}

/// Squared Euclidean norm sum |g_i|^2 (works for real and complex).
template <typename T>
double norm2_sq(const Grid2D<T>& g) {
  double acc = 0.0;
  for (const auto& v : g) acc += std::norm(std::complex<double>(v));
  return acc;
}

/// Euclidean norm.
template <typename T>
double norm2(const Grid2D<T>& g) {
  return std::sqrt(norm2_sq(g));
}

/// Largest absolute element value.
template <typename T>
double max_abs(const Grid2D<T>& g) {
  double m = 0.0;
  for (const auto& v : g) m = std::max(m, std::abs(std::complex<double>(v)));
  return m;
}

/// Minimum element (real grids only).
inline double min_value(const RealGrid& g) {
  double m = std::numeric_limits<double>::infinity();
  for (double v : g) m = std::min(m, v);
  return m;
}

/// Maximum element (real grids only).
inline double max_value(const RealGrid& g) {
  double m = -std::numeric_limits<double>::infinity();
  for (double v : g) m = std::max(m, v);
  return m;
}

/// Numerically safe logistic sigmoid 1 / (1 + exp(-x)).
inline double sigmoid(double x) {
  if (x >= 0.0) {
    return 1.0 / (1.0 + std::exp(-x));
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

/// Derivative of the sigmoid expressed through its output: s * (1 - s).
inline double sigmoid_derivative_from_output(double s) { return s * (1.0 - s); }

/// Elementwise sigmoid with steepness `alpha`: out = sigmoid(alpha * x).
/// This is the activation of Table 1 for both mask and source parameters.
/// Runs through the active SIMD kernel backend (fft/kernels/), like every
/// other dense sigmoid pass in the system.
inline RealGrid sigmoid_activation(const RealGrid& theta, double alpha) {
  RealGrid out(theta.rows(), theta.cols());
  fft::active_kernel().sigmoid(out.data(), theta.data(), theta.size(), alpha,
                               /*shift=*/0.0);
  return out;
}

/// Elementwise cosine activation out = 0.5 * (1 + cos(pi * (1 - x))) mapped
/// through steepness `alpha`; the alternative the paper mentions in Sec. 3.1
/// (and rejects for training stability).  Provided for the ablation bench.
inline RealGrid cosine_activation(const RealGrid& theta, double alpha) {
  return map(theta, [alpha](double x) {
    const double t = std::clamp(alpha * x, -1.0, 1.0);
    return 0.5 * (1.0 + std::sin(t * 1.5707963267948966));
  });
}

/// Binarize a real grid at `threshold` to exact {0,1}.
inline RealGrid binarize(const RealGrid& g, double threshold = 0.5) {
  return map(g, [threshold](double v) { return v > threshold ? 1.0 : 0.0; });
}

/// Real part of a complex grid.
inline RealGrid real_part(const ComplexGrid& g) {
  return map(g, [](std::complex<double> v) { return v.real(); });
}

/// |g|^2 elementwise (field intensity).
inline RealGrid abs_sq(const ComplexGrid& g) {
  return map(g, [](std::complex<double> v) { return std::norm(v); });
}

/// Promote a real grid to complex (imaginary part zero).
inline ComplexGrid to_complex(const RealGrid& g) {
  return map(g, [](double v) { return std::complex<double>(v, 0.0); });
}

/// a + s * b, shapes must match (axpy).
inline RealGrid axpy(const RealGrid& a, double s, const RealGrid& b) {
  return zip(a, b, [s](double x, double y) { return x + s * y; });
}

}  // namespace bismo

#endif  // BISMO_MATH_GRID_OPS_HPP
