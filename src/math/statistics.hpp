// Streaming and batch statistics used by the evaluation harness
// (Figure 5 reports per-step mean and standard deviation of the SMO loss
// across a dataset; Table 3/4 report dataset averages and ratios).
#ifndef BISMO_MATH_STATISTICS_HPP
#define BISMO_MATH_STATISTICS_HPP

#include <cstddef>
#include <limits>
#include <vector>

namespace bismo {

/// Numerically stable single-pass mean/variance accumulator (Welford).
class RunningStats {
 public:
  /// Add one observation.
  void push(double x) noexcept;

  /// Number of observations so far.
  std::size_t count() const noexcept { return n_; }
  /// Sample mean (0 when empty).
  double mean() const noexcept { return mean_; }
  /// Unbiased sample variance (0 when fewer than two observations).
  double variance() const noexcept;
  /// Unbiased sample standard deviation.
  double stddev() const noexcept;
  /// Smallest observation (+inf when empty).
  double min() const noexcept { return min_; }
  /// Largest observation (-inf when empty).
  double max() const noexcept { return max_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Mean of a vector (0 when empty).
double mean(const std::vector<double>& xs);

/// Unbiased standard deviation of a vector (0 when size < 2).
double stddev(const std::vector<double>& xs);

/// Linear-interpolated percentile in [0,100]; xs need not be sorted.
/// Throws std::invalid_argument when xs is empty or p out of range.
double percentile(std::vector<double> xs, double p);

}  // namespace bismo

#endif  // BISMO_MATH_STATISTICS_HPP
