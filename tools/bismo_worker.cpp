// bismo_worker: serve one api::Session over TCP (see src/net/worker.hpp).
//
//   bismo_worker --port 7421 --threads 2 --name lane0
//   bismo_worker                # ephemeral port, printed on stdout
//
// A worker accepts jobs from net::Dispatcher clients (bismo_cli
// --workers host:port,...), streams their JobEvents back, and reports
// live Session::stats() in heartbeats.  SIGINT/SIGTERM shut down
// cleanly; in-flight jobs of disconnected clients are cancelled.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "fft/kernels/kernel.hpp"
#include "net/worker.hpp"
#include "sim/pipeline.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --port N           TCP port on 127.0.0.1 (default: ephemeral)\n"
      "  --threads N        session parallel width (default 1; cluster\n"
      "                     deployments scale by worker count instead)\n"
      "  --lanes N          scheduler lanes (default: threads)\n"
      "  --coalesce N       same-shape jobs coalesced per dispatch "
      "(default 8)\n"
      "  --heartbeat-ms N   max quiet time between frames (default 200)\n"
      "  --name S           worker name reported in the hello (default\n"
      "                     \"worker\")\n"
      "  --fft-backend B    FFT kernel backend: scalar | avx2 | neon | auto\n"
      "  --verbose          connection lifecycle logging to stderr\n",
      argv0);
  std::exit(2);
}

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

}  // namespace

int main(int argc, char** argv) {
  bismo::net::WorkerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") usage(argv[0]);
    else if (flag == "--port") options.port = static_cast<std::uint16_t>(
        std::strtoul(next().c_str(), nullptr, 10));
    else if (flag == "--threads") options.threads =
        std::strtoul(next().c_str(), nullptr, 10);
    else if (flag == "--lanes") options.lanes =
        std::strtoul(next().c_str(), nullptr, 10);
    else if (flag == "--coalesce") options.coalesce_limit =
        std::strtoul(next().c_str(), nullptr, 10);
    else if (flag == "--heartbeat-ms") options.heartbeat_seconds =
        std::strtod(next().c_str(), nullptr) / 1000.0;
    else if (flag == "--name") options.name = next();
    else if (flag == "--fft-backend") {
      const std::string backend = next();
      if (!bismo::fft::set_backend(backend)) {
        std::fprintf(stderr, "unknown or unavailable FFT backend \"%s\"\n",
                     backend.c_str());
        return 2;
      }
    }
    else if (flag == "--verbose") options.verbose = true;
    else usage(argv[0]);
  }

  try {
    bismo::net::Worker worker(options);
    std::printf("bismo_worker listening on 127.0.0.1:%u (%s, width %zu, "
                "fft %s, pipeline %s)\n",
                static_cast<unsigned>(worker.port()), options.name.c_str(),
                worker.session().width(), bismo::fft::backend_name(),
                bismo::sim::fusion_mode_name());
    std::fflush(stdout);

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    worker.start();
    while (!g_stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::fprintf(stderr, "bismo_worker: shutting down (%zu jobs served)\n",
                 worker.jobs_served());
    worker.stop();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
