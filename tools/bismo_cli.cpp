// bismo_cli: run SMO jobs through the bismo::api facade.
//
//   bismo_cli --layout clip.txt --method bismo-nmn --steps 40 --out out/
//   bismo_cli --generate iccad13 --seed 7 --method am-aa
//   bismo_cli --generate ispd19 --batch 4 --json results.json
//   bismo_cli --generate iccad13 --config mask_dim=128 --config lr_mask=0.2
//
// One Session owns the worker pool and the warm per-shape workspaces, so a
// --batch run amortizes setup across all clips.  Results are printed as a
// summary and, with --json, written as one machine-readable document.
// Ctrl-C cancels cooperatively: the in-flight job stops at the next step
// and partial results are still reported.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "io/grid_io.hpp"
#include "io/image_io.hpp"

namespace {

using namespace bismo;

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --layout PATH      layout text file (TILE/RECT format)\n"
      "  --generate KIND    synthesize clips: iccad13 | iccad-l | ispd19\n"
      "  --seed N           generator seed (default 1)\n"
      "  --batch N          run N generated clips (seeds seed..seed+N-1)\n"
      "  --method NAME      nilt | dac23 | abbe-mo | am-ah | am-aa |\n"
      "                     bismo-fd | bismo-cg | bismo-nmn (default)\n"
      "  --config K=V       override a config key (repeatable; see\n"
      "                     --list-config for the key reference)\n"
      "  --nm N             shorthand for --config mask_dim=N (default 64)\n"
      "  --nj N             shorthand for --config source_dim=N (default 9)\n"
      "  --steps N          shorthand for --config outer_steps=N (default 40)\n"
      "  --threads N        worker threads (default: hardware)\n"
      "  --json PATH        write results JSON ('-' for stdout)\n"
      "  --progress         print per-step progress to stderr\n"
      "  --out DIR          image/checkpoint directory for single runs\n"
      "                     (default bismo_cli_out)\n"
      "  --list-config      print the config-key reference and exit\n",
      argv0);
  std::exit(2);
}

void print_config_keys() {
  std::printf("config keys (--config key=value):\n");
  for (const api::ConfigKeyInfo& info : api::config_keys()) {
    std::printf("  %-18s %s\n", info.key.c_str(), info.doc.c_str());
  }
}

std::atomic<api::Session*> g_session{nullptr};

void handle_interrupt(int) {
  // Lock-free atomic load + an atomic-flag store inside request_cancel:
  // both async-signal-safe.
  api::Session* session = g_session.load(std::memory_order_relaxed);
  if (session != nullptr) session->request_cancel();
}

void write_images(api::Session& session, const api::JobSpec& spec,
                  const api::JobResult& result, const std::string& out_dir) {
  // Re-materialize the problem (cheap: warm workspaces) to render images.
  const auto problem = session.make_problem(spec);
  std::filesystem::create_directories(out_dir);
  write_pgm(out_dir + "/target.pgm", problem->target());
  write_pgm(out_dir + "/source.pgm",
            problem->source_image(result.run.theta_j));
  write_pgm(out_dir + "/mask.pgm", problem->mask_image(result.run.theta_m));
  const RealGrid resist = problem->resist_image(
      result.run.theta_m, result.run.theta_j, DoseCorner::kNominal);
  write_pgm(out_dir + "/resist.pgm", resist);
  write_compare_ppm(out_dir + "/resist_vs_target.ppm", resist,
                    problem->target());
  save_grid(out_dir + "/theta_m.bsmg", result.run.theta_m);
  save_grid(out_dir + "/theta_j.bsmg", result.run.theta_j);
  std::printf("outputs in %s/\n", out_dir.c_str());
}

void print_result(const api::JobResult& r) {
  if (!r.ok()) {
    std::printf("%-28s ERROR: %s\n", r.job_name.c_str(), r.error.c_str());
    return;
  }
  std::printf("%-28s L2 %8.0f -> %8.0f | PVB %8.0f -> %8.0f |"
              " EPE %zu -> %zu | %.1f s%s\n",
              r.job_name.c_str(), r.before.l2_nm2, r.after.l2_nm2,
              r.before.pvb_nm2, r.after.pvb_nm2, r.before.epe_violations,
              r.after.epe_violations, r.total_seconds,
              r.cancelled() ? " [cancelled]" : "");
}

}  // namespace

int main(int argc, char** argv) {
  std::string layout_path;
  std::string generate_kind;
  std::string method_name = "bismo-nmn";
  std::string out_dir = "bismo_cli_out";
  std::string json_path;
  std::vector<std::string> overrides;
  std::uint64_t seed = 1;
  std::size_t batch = 0;
  std::size_t threads = 0;
  bool progress = false;

  // Shorthand flags keep their historical defaults by prepending their
  // override before any explicit --config (so --config wins on conflict).
  std::vector<std::string> shorthand{"mask_dim=64", "source_dim=9",
                                     "outer_steps=40"};

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") usage(argv[0]);
    else if (flag == "--list-config") { print_config_keys(); return 0; }
    else if (flag == "--layout") layout_path = next();
    else if (flag == "--generate") generate_kind = next();
    else if (flag == "--seed") seed = std::strtoull(next().c_str(), nullptr, 10);
    else if (flag == "--batch") batch = std::strtoul(next().c_str(), nullptr, 10);
    else if (flag == "--method") method_name = next();
    else if (flag == "--config") overrides.push_back(next());
    else if (flag == "--nm") shorthand[0] = "mask_dim=" + next();
    else if (flag == "--nj") shorthand[1] = "source_dim=" + next();
    else if (flag == "--steps") shorthand[2] = "outer_steps=" + next();
    else if (flag == "--threads") threads = std::strtoul(next().c_str(), nullptr, 10);
    else if (flag == "--json") json_path = next();
    else if (flag == "--progress") progress = true;
    else if (flag == "--out") out_dir = next();
    else usage(argv[0]);
  }
  if (layout_path.empty() == generate_kind.empty()) {
    std::fprintf(stderr, "exactly one of --layout / --generate required\n");
    usage(argv[0]);
  }
  if (batch > 0 && generate_kind.empty()) {
    std::fprintf(stderr, "--batch requires --generate\n");
    usage(argv[0]);
  }

  try {
    const Method method = method_from_string(method_name);

    // Shared base configuration for every job.
    api::JobSpec base;
    base.method = method;
    base.config.initial_source.shape = SourceShape::kConventional;
    base.config.activation.source_init = 1.5;
    base.config_overrides = shorthand;
    base.config_overrides.insert(base.config_overrides.end(),
                                 overrides.begin(), overrides.end());

    std::vector<api::JobSpec> specs;
    if (!layout_path.empty()) {
      api::JobSpec spec = base;
      spec.clip = api::ClipSource::from_file(layout_path);
      specs.push_back(std::move(spec));
    } else {
      const DatasetKind kind = dataset_from_string(generate_kind);
      const std::size_t count = batch > 0 ? batch : 1;
      for (std::size_t b = 0; b < count; ++b) {
        api::JobSpec spec = base;
        spec.clip = api::ClipSource::generated(kind, seed + b);
        specs.push_back(std::move(spec));
      }
    }

    api::Session::Options options;
    options.threads = threads;
    if (progress) {
      options.on_progress = [](const api::Progress& p) {
        std::fprintf(stderr, "\r[%zu/%zu %s] step %d/%d loss %.3f   ",
                     p.job_index + 1, p.job_count, p.job_name.c_str(),
                     p.step.step + 1, p.planned_steps, p.step.loss);
      };
    }
    api::Session session(options);
    g_session.store(&session);
    std::signal(SIGINT, handle_interrupt);

    std::printf("%zu job(s), method %s, %zu worker threads\n", specs.size(),
                to_string(method).c_str(), session.pool().width());

    const std::vector<api::JobResult> results = session.run_batch(specs);
    g_session.store(nullptr);
    // Terminate the live \r progress line (early-stopped or cancelled runs
    // never reach their planned final step).
    if (progress) std::fputc('\n', stderr);

    int failures = 0;
    for (const api::JobResult& r : results) {
      print_result(r);
      if (!r.ok()) ++failures;
    }
    const api::Session::Stats stats = session.stats();
    if (results.size() > 1) {
      std::printf("session: %zu jobs, %zu served from warm workspaces\n",
                  stats.jobs_run, stats.workspace_reuses);
    }

    if (!json_path.empty()) {
      if (json_path == "-") {
        api::write_json(std::cout, results);
      } else {
        std::ofstream out(json_path);
        if (!out) {
          std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
          return 1;
        }
        api::write_json(out, results);
        std::printf("results JSON: %s\n", json_path.c_str());
      }
    }

    // Single successful runs keep the historical image/checkpoint dump.
    if (results.size() == 1 && results[0].ok() && !results[0].cancelled()) {
      write_images(session, specs[0], results[0], out_dir);
    }
    return failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
