// bismo_cli: run any SMO method on a layout clip from the command line.
//
//   bismo_cli --layout clip.txt --method bismo-nmn --steps 40 --out out/
//   bismo_cli --generate iccad13 --seed 7 --method am-aa
//
// Reads the text layout format (see layout/layout.hpp) or synthesizes a
// clip, runs the chosen method, prints the paper's metrics, and writes
// source/mask/resist images plus BSMG parameter checkpoints for resuming
// or downstream analysis.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "core/problem.hpp"
#include "core/runner.hpp"
#include "io/grid_io.hpp"
#include "io/image_io.hpp"
#include "layout/generators.hpp"
#include "layout/layout.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace bismo;

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --layout PATH      layout text file (TILE/RECT format)\n"
      "  --generate KIND    synthesize a clip: iccad13 | iccad-l | ispd19\n"
      "  --seed N           generator seed (default 1)\n"
      "  --method NAME      nilt | dac23 | abbe-mo | am-ah | am-aa |\n"
      "                     bismo-fd | bismo-cg | bismo-nmn (default)\n"
      "  --nm N             mask grid dimension (default 64)\n"
      "  --nj N             source grid dimension (default 9)\n"
      "  --steps N          outer/MO steps (default 40)\n"
      "  --threads N        worker threads (default: hardware)\n"
      "  --out DIR          output directory (default bismo_cli_out)\n",
      argv0);
  std::exit(2);
}

Method parse_method(const std::string& name, const char* argv0) {
  if (name == "nilt") return Method::kNiltProxy;
  if (name == "dac23") return Method::kDac23Proxy;
  if (name == "abbe-mo") return Method::kAbbeMo;
  if (name == "am-ah") return Method::kAmAbbeHopkins;
  if (name == "am-aa") return Method::kAmAbbeAbbe;
  if (name == "bismo-fd") return Method::kBismoFd;
  if (name == "bismo-cg") return Method::kBismoCg;
  if (name == "bismo-nmn") return Method::kBismoNmn;
  std::fprintf(stderr, "unknown method: %s\n", name.c_str());
  usage(argv0);
}

DatasetKind parse_kind(const std::string& name, const char* argv0) {
  if (name == "iccad13") return DatasetKind::kIccad13;
  if (name == "iccad-l") return DatasetKind::kIccadL;
  if (name == "ispd19") return DatasetKind::kIspd19;
  std::fprintf(stderr, "unknown dataset kind: %s\n", name.c_str());
  usage(argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string layout_path;
  std::string generate_kind;
  std::string method_name = "bismo-nmn";
  std::string out_dir = "bismo_cli_out";
  std::uint64_t seed = 1;
  std::size_t mask_dim = 64;
  std::size_t source_dim = 9;
  std::size_t threads = 0;
  int steps = 40;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") usage(argv[0]);
    else if (flag == "--layout") layout_path = next();
    else if (flag == "--generate") generate_kind = next();
    else if (flag == "--seed") seed = std::strtoull(next().c_str(), nullptr, 10);
    else if (flag == "--method") method_name = next();
    else if (flag == "--nm") mask_dim = std::strtoul(next().c_str(), nullptr, 10);
    else if (flag == "--nj") source_dim = std::strtoul(next().c_str(), nullptr, 10);
    else if (flag == "--steps") steps = std::atoi(next().c_str());
    else if (flag == "--threads") threads = std::strtoul(next().c_str(), nullptr, 10);
    else if (flag == "--out") out_dir = next();
    else usage(argv[0]);
  }
  if (layout_path.empty() == generate_kind.empty()) {
    std::fprintf(stderr, "exactly one of --layout / --generate required\n");
    usage(argv[0]);
  }

  try {
    Layout clip;
    if (!layout_path.empty()) {
      clip = read_layout(layout_path);
    } else {
      DatasetSpec spec = dataset_spec(parse_kind(generate_kind, argv[0]));
      spec.tile_nm = 512.0 * static_cast<double>(mask_dim) / 64.0;
      clip = generate_clip(spec, seed);
    }

    SmoConfig config;
    config.optics.mask_dim = mask_dim;
    config.optics.pixel_nm = clip.tile_nm() / static_cast<double>(mask_dim);
    config.source_dim = source_dim;
    config.outer_steps = steps;
    config.initial_source.shape = SourceShape::kConventional;
    config.activation.source_init = 1.5;

    ThreadPool pool(threads);
    const SmoProblem problem(config, clip, &pool);
    const Method method = parse_method(method_name, argv[0]);

    std::printf("clip: %zu rects, %.0f nm^2 | grid %zu px @ %.2f nm |"
                " method %s, %d steps\n",
                clip.size(), clip.union_area_nm2(), mask_dim,
                config.optics.pixel_nm, to_string(method).c_str(), steps);

    const SolutionMetrics before = problem.evaluate_solution(
        problem.initial_theta_m(), problem.initial_theta_j());
    const RunResult run = run_method(problem, method);
    const SolutionMetrics after =
        problem.evaluate_solution(run.theta_m, run.theta_j);

    std::printf("L2  %8.0f -> %8.0f nm^2\n", before.l2_nm2, after.l2_nm2);
    std::printf("PVB %8.0f -> %8.0f nm^2\n", before.pvb_nm2, after.pvb_nm2);
    std::printf("EPE %5zu/%zu -> %5zu/%zu violations\n",
                before.epe_violations, before.epe_samples,
                after.epe_violations, after.epe_samples);
    std::printf("loss %.3f -> %.3f | %.1f s, %ld gradient evals\n",
                run.trace.front().loss, run.final_loss(), run.wall_seconds,
                run.gradient_evaluations);

    std::filesystem::create_directories(out_dir);
    write_pgm(out_dir + "/target.pgm", problem.target());
    write_pgm(out_dir + "/source.pgm", problem.source_image(run.theta_j));
    write_pgm(out_dir + "/mask.pgm", problem.mask_image(run.theta_m));
    const RealGrid resist =
        problem.resist_image(run.theta_m, run.theta_j, DoseCorner::kNominal);
    write_pgm(out_dir + "/resist.pgm", resist);
    write_compare_ppm(out_dir + "/resist_vs_target.ppm", resist,
                      problem.target());
    save_grid(out_dir + "/theta_m.bsmg", run.theta_m);
    save_grid(out_dir + "/theta_j.bsmg", run.theta_j);
    std::printf("outputs in %s/\n", out_dir.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
