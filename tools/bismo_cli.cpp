// bismo_cli: run SMO jobs through the bismo::api facade.
//
//   bismo_cli --layout clip.txt --method bismo-nmn --steps 40 --out out/
//   bismo_cli --generate iccad13 --seed 7 --method am-aa
//   bismo_cli --generate ispd19 --batch 4 --json results.json
//   bismo_cli --generate iccad13 --config mask_dim=128 --config lr_mask=0.2
//
// One Session owns the worker pool and the warm per-shape workspaces, so a
// --batch run amortizes setup across all clips.  Results are printed as a
// summary and, with --json, written as one machine-readable document.
// Ctrl-C cancels cooperatively: in-flight jobs stop at the next step and
// partial results are still reported.  --watch switches to the async
// submission path and streams per-job status lines (enqueued / started /
// step / done with queue latency) as the scheduler works; there the first
// Ctrl-C cancels each outstanding job individually via its JobHandle.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "fft/kernels/kernel.hpp"
#include "io/grid_io.hpp"
#include "io/image_io.hpp"
#include "math/grid_ops.hpp"
#include "net/net.hpp"
#include "shard/shard.hpp"

namespace {

using namespace bismo;

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --layout PATH      layout text file (TILE/RECT format)\n"
      "  --generate KIND    synthesize clips: iccad13 | iccad-l | ispd19\n"
      "  --seed N           generator seed (default 1)\n"
      "  --batch N          run N generated clips (seeds seed..seed+N-1)\n"
      "  --method NAME      nilt | dac23 | abbe-mo | am-ah | am-aa |\n"
      "                     bismo-fd | bismo-cg | bismo-nmn (default)\n"
      "  --config K=V       override a config key (repeatable; see\n"
      "                     --list-config for the key reference)\n"
      "  --nm N             shorthand for --config mask_dim=N (default 64)\n"
      "  --nj N             shorthand for --config source_dim=N (default 9)\n"
      "  --steps N          shorthand for --config outer_steps=N (default 40)\n"
      "  --tiles RxC        tiled execution: shard the layout into an RxC\n"
      "                     grid of overlapping clips, optimize them\n"
      "                     concurrently, stitch the results (--nm then\n"
      "                     sets the FULL-layout grid dimension)\n"
      "  --halo-nm H        tile overlap margin in nm (default 128)\n"
      "  --lanes N          tiles optimized at once (default: auto)\n"
      "  --threads N        worker threads (default: hardware)\n"
      "  --queue-capacity N queued jobs past which the admission policy\n"
      "                     applies (default: effectively unbounded)\n"
      "  --queue-policy P   admission policy at capacity: block | reject |\n"
      "                     shed (shed-oldest); applies to --watch\n"
      "                     submissions (default block)\n"
      "  --coalesce N       batch up to N queued same-shape jobs into one\n"
      "                     scheduler dispatch under load (1 disables;\n"
      "                     default 8)\n"
      "  --fft-backend B    FFT kernel backend: scalar | avx2 | neon | auto\n"
      "                     (default: auto; also via BISMO_FFT_BACKEND)\n"
      "  --workers LIST     distributed serving: execute jobs on running\n"
      "                     bismo_worker processes (\"host:port,host:port\")\n"
      "                     via the fault-tolerant cluster dispatcher\n"
      "  --spawn-workers N  fork N local worker processes on ephemeral\n"
      "                     ports and dispatch to them (no running workers\n"
      "                     needed; they die with the CLI)\n"
      "  --json PATH        write results JSON ('-' for stdout)\n"
      "  --csv PATH         write a per-job summary CSV (status, queue/run\n"
      "                     latency, metrics)\n"
      "  --progress         print per-step progress to stderr\n"
      "  --watch            submit asynchronously and stream per-job status\n"
      "                     lines plus a periodic queue/lane status line;\n"
      "                     Ctrl-C cancels the outstanding jobs\n"
      "                     individually\n"
      "  --out DIR          image/checkpoint directory for single runs\n"
      "                     (default bismo_cli_out)\n"
      "  --list-config      print the config-key reference and exit\n",
      argv0);
  std::exit(2);
}

void print_config_keys() {
  std::printf("config keys (--config key=value):\n");
  for (const api::ConfigKeyInfo& info : api::config_keys()) {
    std::printf("  %-18s %s\n", info.key.c_str(), info.doc.c_str());
  }
}

// Session::request_cancel walks the scheduler registry under a mutex, so
// it is no longer async-signal-safe; the handler only flips an atomic flag
// (and restores the default disposition so a second Ctrl-C exits hard).  A
// watcher thread / the --watch loop polls the flag and performs the cancel
// from a normal thread.
std::atomic<bool> g_interrupted{false};

void handle_interrupt(int) {
  g_interrupted.store(true, std::memory_order_relaxed);
  std::signal(SIGINT, SIG_DFL);
}

/// Polls g_interrupted and forwards the first interrupt to the session as
/// a cooperative cancel (drains in-flight jobs; the session re-arms).
class InterruptWatcher {
 public:
  explicit InterruptWatcher(api::Session& session)
      : thread_([this, &session] {
          while (!stop_.load(std::memory_order_relaxed)) {
            if (g_interrupted.load(std::memory_order_relaxed)) {
              session.request_cancel();
              return;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
          }
        }) {}

  ~InterruptWatcher() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
  }

 private:
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

void write_images(api::Session& session, const api::JobSpec& spec,
                  const api::JobResult& result, const std::string& out_dir) {
  // Re-materialize the problem (cheap: warm workspaces) to render images.
  const auto problem = session.make_problem(spec);
  std::filesystem::create_directories(out_dir);
  write_pgm(out_dir + "/target.pgm", problem->target());
  write_pgm(out_dir + "/source.pgm",
            problem->source_image(result.run.theta_j));
  write_pgm(out_dir + "/mask.pgm", problem->mask_image(result.run.theta_m));
  const RealGrid resist = problem->resist_image(
      result.run.theta_m, result.run.theta_j, DoseCorner::kNominal);
  write_pgm(out_dir + "/resist.pgm", resist);
  write_compare_ppm(out_dir + "/resist_vs_target.ppm", resist,
                    problem->target());
  save_grid(out_dir + "/theta_m.bsmg", result.run.theta_m);
  save_grid(out_dir + "/theta_j.bsmg", result.run.theta_j);
  std::printf("outputs in %s/\n", out_dir.c_str());
}

/// Async serving path: submit everything up front, stream status via the
/// submitter's event observer, cancel outstanding jobs individually on ^C,
/// and print a live status line (print_status) roughly once per second.
/// Works identically for an in-process Session and a cluster Dispatcher.
std::vector<api::JobResult> watch_run(api::JobSubmitter& submitter,
                                      const std::vector<api::JobSpec>& specs,
                                      const api::SubmitOptions& submit_base,
                                      const std::function<void()>& print_status) {
  std::vector<api::JobHandle> handles =
      submitter.submit_batch(specs, submit_base);
  std::vector<api::JobResult> results(specs.size());
  bool cancelled = false;
  int polls = 0;
  for (std::size_t i = 0; i < handles.size(); ++i) {
    while (!handles[i].wait_for(0.1)) {
      if (!cancelled && g_interrupted.load(std::memory_order_relaxed)) {
        std::fprintf(stderr, "^C: cancelling outstanding jobs\n");
        // Per-job cancellation: queued jobs finalize immediately, running
        // jobs stop at their next step; terminal handles are no-ops.
        for (const api::JobHandle& handle : handles) handle.cancel();
        cancelled = true;
      }
      if (++polls % 10 == 0 && print_status) print_status();
    }
    results[i] = handles[i].wait();
  }
  return results;
}

void print_result(const api::JobResult& r) {
  if (!r.ok()) {
    std::printf("%-28s ERROR: %s\n", r.job_name.c_str(), r.error.c_str());
    return;
  }
  std::printf("%-28s L2 %8.0f -> %8.0f | PVB %8.0f -> %8.0f |"
              " EPE %zu -> %zu | %.1f s%s\n",
              r.job_name.c_str(), r.before.l2_nm2, r.after.l2_nm2,
              r.before.pvb_nm2, r.after.pvb_nm2, r.before.epe_violations,
              r.after.epe_violations, r.total_seconds,
              r.cancelled() ? " [cancelled]" : "");
}

/// Tiled execution: shard the layout, sweep the tiles concurrently,
/// stitch, report full-layout metrics, dump images/JSON.
int run_tiled(api::Session& session, api::JobSubmitter* submitter,
              const api::JobSpec& base, const std::string& layout_path,
              const std::string& generate_kind, std::uint64_t seed,
              std::size_t rows, std::size_t cols, double halo_nm,
              std::size_t lanes, bool progress, const std::string& json_path,
              const std::string& out_dir) {
  Layout layout;
  if (!layout_path.empty()) {
    layout = read_layout(layout_path);
  } else {
    DatasetSpec dspec = dataset_spec(dataset_from_string(generate_kind));
    layout = generate_clip(dspec, seed);
  }

  shard::ShardOptions opts;
  opts.rows = rows;
  opts.cols = cols;
  opts.halo_nm = halo_nm;
  opts.concurrency = lanes;

  shard::TileScheduler scheduler(session, submitter);
  const shard::TilePlan plan = scheduler.plan_for(layout, base, opts);
  std::printf("%zu tiles (%zux%zu, %zu px windows, %zu px halo), "
              "width %zu%s\n",
              plan.tile_count(), rows, cols, plan.tile_dim(), plan.halo_px(),
              submitter != nullptr ? submitter->parallel_width()
                                   : session.width(),
              submitter != nullptr ? " (cluster)" : "");

  const shard::ShardResult result = scheduler.run(layout, base, opts);
  (void)progress;  // tiled progress prints whole lines; nothing to flush

  int failures = 0;
  for (const api::JobResult& tile : result.tiles) {
    if (!tile.ok()) {
      std::printf("%-28s ERROR: %s\n", tile.job_name.c_str(),
                  tile.error.c_str());
      ++failures;
    } else {
      std::printf("%-28s loss %8.3f | %3zu steps | %.1f s%s\n",
                  tile.job_name.c_str(), tile.run.final_loss(),
                  tile.run.trace.size(), tile.total_seconds,
                  tile.cancelled() ? " [cancelled]" : "");
    }
  }
  if (result.ok() && !result.cancelled) {
    std::printf("stitched %zux%zu: L2 %8.0f | PVB %8.0f | EPE %zu/%zu | "
                "%.1f s total (%.1f s tiles)\n",
                result.plan.full_dim(), result.plan.full_dim(),
                result.stitched.l2_nm2, result.stitched.pvb_nm2,
                result.stitched.epe_violations, result.stitched.epe_samples,
                result.total_seconds, result.run_seconds);

    std::filesystem::create_directories(out_dir);
    write_pgm(out_dir + "/target.pgm", result.target);
    write_pgm(out_dir + "/mask.pgm", result.mask);
    const RealGrid print = binarize(result.resist);
    write_pgm(out_dir + "/resist.pgm", result.resist);
    write_compare_ppm(out_dir + "/resist_vs_target.ppm", print,
                      result.target);
    std::printf("stitched images in %s/\n", out_dir.c_str());
  } else if (!result.ok()) {
    std::printf("sweep failed: %s\n", result.error.c_str());
  }

  if (!json_path.empty()) {
    if (json_path == "-") {
      api::write_json(std::cout, result.tiles);
    } else {
      std::ofstream out(json_path);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
        return 1;
      }
      api::write_json(out, result.tiles);
      std::printf("per-tile results JSON: %s\n", json_path.c_str());
    }
  }
  return failures == 0 && result.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string layout_path;
  std::string generate_kind;
  std::string method_name = "bismo-nmn";
  std::string out_dir = "bismo_cli_out";
  std::string json_path;
  std::string csv_path;
  std::vector<std::string> overrides;
  std::uint64_t seed = 1;
  std::size_t batch = 0;
  std::size_t threads = 0;
  std::size_t queue_capacity = 0;
  std::size_t coalesce_limit = 8;
  api::QueuePolicy queue_policy = api::QueuePolicy::kBlock;
  bool progress = false;
  bool watch = false;
  std::size_t tile_rows = 0;
  std::size_t tile_cols = 0;
  double halo_nm = 128.0;
  std::size_t lanes = 0;
  std::string workers_spec;
  std::size_t spawn_workers = 0;

  // Shorthand flags keep their historical defaults by prepending their
  // override before any explicit --config (so --config wins on conflict).
  std::vector<std::string> shorthand{"mask_dim=64", "source_dim=9",
                                     "outer_steps=40"};

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") usage(argv[0]);
    else if (flag == "--list-config") { print_config_keys(); return 0; }
    else if (flag == "--layout") layout_path = next();
    else if (flag == "--generate") generate_kind = next();
    else if (flag == "--seed") seed = std::strtoull(next().c_str(), nullptr, 10);
    else if (flag == "--batch") batch = std::strtoul(next().c_str(), nullptr, 10);
    else if (flag == "--method") method_name = next();
    else if (flag == "--config") overrides.push_back(next());
    else if (flag == "--nm") shorthand[0] = "mask_dim=" + next();
    else if (flag == "--nj") shorthand[1] = "source_dim=" + next();
    else if (flag == "--steps") shorthand[2] = "outer_steps=" + next();
    else if (flag == "--tiles") {
      const std::string grid = next();
      const std::size_t x = grid.find_first_of("xX");
      if (x == std::string::npos) usage(argv[0]);
      tile_rows = std::strtoul(grid.substr(0, x).c_str(), nullptr, 10);
      tile_cols = std::strtoul(grid.substr(x + 1).c_str(), nullptr, 10);
      if (tile_rows == 0 || tile_cols == 0) usage(argv[0]);
    }
    else if (flag == "--halo-nm") halo_nm = std::strtod(next().c_str(), nullptr);
    else if (flag == "--lanes") lanes = std::strtoul(next().c_str(), nullptr, 10);
    else if (flag == "--threads") threads = std::strtoul(next().c_str(), nullptr, 10);
    else if (flag == "--queue-capacity") queue_capacity = std::strtoul(next().c_str(), nullptr, 10);
    else if (flag == "--coalesce") coalesce_limit = std::strtoul(next().c_str(), nullptr, 10);
    else if (flag == "--queue-policy") {
      const std::string policy = next();
      if (policy == "block") queue_policy = api::QueuePolicy::kBlock;
      else if (policy == "reject") queue_policy = api::QueuePolicy::kReject;
      else if (policy == "shed" || policy == "shed-oldest") {
        queue_policy = api::QueuePolicy::kShedOldest;
      } else {
        std::fprintf(stderr, "unknown queue policy \"%s\"\n", policy.c_str());
        usage(argv[0]);
      }
    }
    else if (flag == "--fft-backend") {
      const std::string backend = next();
      if (!bismo::fft::set_backend(backend)) {
        std::fprintf(stderr,
                     "unknown or unavailable FFT backend \"%s\" (available:",
                     backend.c_str());
        for (const std::string& name : bismo::fft::available_backends()) {
          std::fprintf(stderr, " %s", name.c_str());
        }
        std::fprintf(stderr, ")\n");
        return 2;
      }
    }
    else if (flag == "--workers") workers_spec = next();
    else if (flag == "--spawn-workers") spawn_workers = std::strtoul(next().c_str(), nullptr, 10);
    else if (flag == "--json") json_path = next();
    else if (flag == "--csv") csv_path = next();
    else if (flag == "--progress") progress = true;
    else if (flag == "--watch") watch = true;
    else if (flag == "--out") out_dir = next();
    else usage(argv[0]);
  }
  if (layout_path.empty() == generate_kind.empty()) {
    std::fprintf(stderr, "exactly one of --layout / --generate required\n");
    usage(argv[0]);
  }
  if (batch > 0 && generate_kind.empty()) {
    std::fprintf(stderr, "--batch requires --generate\n");
    usage(argv[0]);
  }
  if (tile_rows > 0 && batch > 0) {
    std::fprintf(stderr, "--tiles cannot be combined with --batch\n");
    usage(argv[0]);
  }
  if (watch && tile_rows > 0) {
    std::fprintf(stderr, "--watch cannot be combined with --tiles\n");
    usage(argv[0]);
  }
  if (spawn_workers > 0 && !workers_spec.empty()) {
    std::fprintf(stderr,
                 "--spawn-workers and --workers are mutually exclusive\n");
    usage(argv[0]);
  }

  try {
    // Fork worker processes FIRST: spawning must precede any thread the
    // Session or Dispatcher creates in this process.
    net::SpawnedCluster cluster;
    std::vector<net::Endpoint> worker_endpoints;
    if (spawn_workers > 0) {
      cluster = net::spawn_local_workers(spawn_workers);
      worker_endpoints = cluster.endpoints();
    } else if (!workers_spec.empty()) {
      worker_endpoints = net::parse_endpoints(workers_spec);
    }
    const Method method = method_from_string(method_name);

    // Shared base configuration for every job.
    api::JobSpec base;
    base.method = method;
    base.config.initial_source.shape = SourceShape::kConventional;
    base.config.activation.source_init = 1.5;
    base.config_overrides = shorthand;
    base.config_overrides.insert(base.config_overrides.end(),
                                 overrides.begin(), overrides.end());

    api::Session::Options options;
    options.threads = threads;
    options.queue_capacity = queue_capacity;
    options.coalesce_limit = std::max<std::size_t>(1, coalesce_limit);
    if (watch) {
      // Whole status lines per job-lifecycle event; step lines at coarse
      // intervals when --progress is also given.
      options.on_event = [progress](const api::JobEvent& e) {
        switch (e.kind) {
          case api::JobEvent::Kind::kEnqueued:
            std::fprintf(stderr, "[%zu/%zu %s] queued\n", e.batch_index + 1,
                         e.batch_count, e.job_name.c_str());
            break;
          case api::JobEvent::Kind::kStarted:
            std::fprintf(stderr, "[%zu/%zu %s] started (queued %.0f ms)\n",
                         e.batch_index + 1, e.batch_count,
                         e.job_name.c_str(), e.queued_ms);
            break;
          case api::JobEvent::Kind::kStep: {
            if (!progress) break;
            const int quarter =
                e.planned_steps > 4 ? e.planned_steps / 4 : 1;
            if (e.step.step % quarter == 0 ||
                e.step.step + 1 == e.planned_steps) {
              std::fprintf(stderr, "[%zu/%zu %s] step %d/%d loss %.3f\n",
                           e.batch_index + 1, e.batch_count,
                           e.job_name.c_str(), e.step.step + 1,
                           e.planned_steps, e.step.loss);
            }
            break;
          }
          case api::JobEvent::Kind::kFinished:
            std::fprintf(stderr, "[%zu/%zu %s] %s (run %.0f ms)\n",
                         e.batch_index + 1, e.batch_count,
                         e.job_name.c_str(), api::to_string(e.status),
                         e.run_ms);
            break;
        }
      };
    } else if (progress && tile_rows > 0) {
      // Tiles progress concurrently, so a single \r-rewritten line would
      // interleave different jobs; print whole lines at coarse intervals.
      options.on_progress = [](const api::Progress& p) {
        const int quarter = p.planned_steps > 4 ? p.planned_steps / 4 : 1;
        if (p.step.step % quarter == 0 ||
            p.step.step + 1 == p.planned_steps) {
          std::fprintf(stderr, "[%zu/%zu %s] step %d/%d loss %.3f\n",
                       p.job_index + 1, p.job_count, p.job_name.c_str(),
                       p.step.step + 1, p.planned_steps, p.step.loss);
        }
      };
    } else if (progress) {
      options.on_progress = [](const api::Progress& p) {
        std::fprintf(stderr, "\r[%zu/%zu %s] step %d/%d loss %.3f   ",
                     p.job_index + 1, p.job_count, p.job_name.c_str(),
                     p.step.step + 1, p.planned_steps, p.step.loss);
      };
    }
    api::Session session(options);
    std::signal(SIGINT, handle_interrupt);

    // Cluster mode: jobs execute on worker processes via the dispatcher;
    // the local session still resolves configs and renders images.
    std::unique_ptr<net::Dispatcher> dispatcher;
    if (!worker_endpoints.empty()) {
      net::DispatcherOptions dopts;
      dopts.workers = worker_endpoints;
      if (watch) dopts.on_event = options.on_event;
      dispatcher = std::make_unique<net::Dispatcher>(dopts);
      const std::size_t alive =
          dispatcher->wait_for_workers(worker_endpoints.size(), 10.0);
      std::printf("cluster: %zu/%zu workers alive, parallel width %zu\n",
                  alive, worker_endpoints.size(),
                  dispatcher->parallel_width());
      if (alive == 0) {
        std::fprintf(stderr, "error: no workers reachable\n");
        return 1;
      }
    }

    if (tile_rows > 0) {
      InterruptWatcher watcher(session);
      return run_tiled(session, dispatcher.get(), base, layout_path,
                       generate_kind, seed, tile_rows, tile_cols, halo_nm,
                       lanes, progress, json_path, out_dir);
    }

    std::vector<api::JobSpec> specs;
    if (!layout_path.empty()) {
      api::JobSpec spec = base;
      spec.clip = api::ClipSource::from_file(layout_path);
      specs.push_back(std::move(spec));
    } else {
      const DatasetKind kind = dataset_from_string(generate_kind);
      const std::size_t count = batch > 0 ? batch : 1;
      for (std::size_t b = 0; b < count; ++b) {
        api::JobSpec spec = base;
        spec.clip = api::ClipSource::generated(kind, seed + b);
        specs.push_back(std::move(spec));
      }
    }

    std::printf("%zu job(s), method %s, %zu worker threads\n", specs.size(),
                to_string(method).c_str(), session.width());

    std::vector<api::JobResult> results;
    if (watch) {
      api::SubmitOptions submit_base;
      submit_base.queue_policy = queue_policy;
      // Generated batch clips share one structural shape, so one
      // fingerprint opts the whole stream into small-job coalescing.
      if (options.coalesce_limit > 1 && specs.size() > 1) {
        submit_base.coalesce_key = specs.front().coalesce_fingerprint();
      }
      if (dispatcher != nullptr) {
        net::Dispatcher& d = *dispatcher;
        results = watch_run(d, specs, submit_base, [&d] {
          const net::Dispatcher::Stats s = d.stats();
          std::fprintf(stderr,
                       "[status] workers %zu/%zu | completed %zu/%zu | "
                       "retries %zu\n",
                       s.workers_alive, s.workers_total, s.jobs_completed,
                       s.jobs_submitted, s.jobs_retried);
        });
      } else {
        results = watch_run(session, specs, submit_base, [&session] {
          const api::Session::Stats s = session.stats();
          std::fprintf(stderr,
                       "[status] queued %zu | running %zu | steals %zu | "
                       "coalesced %zu | shed %zu | rejected %zu\n",
                       s.queue_depth, s.jobs_executing, s.steals,
                       s.coalesced_jobs, s.jobs_shed, s.jobs_rejected);
        });
      }
    } else if (dispatcher != nullptr) {
      results = dispatcher->run_batch(specs);
    } else {
      InterruptWatcher watcher(session);
      results = session.run_batch(specs);
    }
    // Terminate the live \r progress line (early-stopped or cancelled runs
    // never reach their planned final step).
    if (progress && !watch) std::fputc('\n', stderr);

    int failures = 0;
    for (const api::JobResult& r : results) {
      print_result(r);
      if (!r.ok()) ++failures;
    }
    if (dispatcher != nullptr) {
      const net::Dispatcher::Stats ds = dispatcher->stats();
      std::printf("cluster: %zu jobs completed on %zu/%zu workers, "
                  "%zu retries\n",
                  ds.jobs_completed, ds.workers_alive, ds.workers_total,
                  ds.jobs_retried);
    } else if (results.size() > 1) {
      const api::Session::Stats stats = session.stats();
      std::printf("session: %zu jobs, %zu served from warm workspaces\n",
                  stats.jobs_run, stats.workspace_reuses);
    }

    if (!json_path.empty()) {
      if (json_path == "-") {
        api::write_json(std::cout, results);
      } else {
        std::ofstream out(json_path);
        if (!out) {
          std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
          return 1;
        }
        api::write_json(out, results);
        std::printf("results JSON: %s\n", json_path.c_str());
      }
    }
    if (!csv_path.empty()) {
      std::ofstream out(csv_path);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", csv_path.c_str());
        return 1;
      }
      api::write_summary_csv(out, results);
      std::printf("summary CSV: %s\n", csv_path.c_str());
    }

    // Single successful runs keep the historical image/checkpoint dump.
    if (results.size() == 1 && results[0].ok() && !results[0].cancelled()) {
      write_images(session, specs[0], results[0], out_dir);
    }
    return failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
