// bismo_lint CLI: lint one or more source trees and report violations.
//
// Usage: bismo_lint [--verbose] [root ...]
//
// Each root is a directory (typically the repo's src/) linted recursively
// via bismo::lint::lint_tree.  Defaults to "src" when no root is given.
// Exit 0 when clean, 1 when findings were reported, 2 on usage/IO errors.
//
// This is a tool, not library code, so console output is fine here.
#include <cstdio>
#include <string>
#include <vector>

#include "lint/linter.hpp"

int main(int argc, char** argv) {
  bool verbose = false;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: bismo_lint [--verbose] [root ...]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bismo_lint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) roots.push_back("src");

  std::size_t total = 0;
  for (const std::string& root : roots) {
    const std::vector<bismo::lint::Finding> findings =
        bismo::lint::lint_tree(root);
    for (const bismo::lint::Finding& finding : findings) {
      if (finding.line == 0) {
        std::fprintf(stderr, "bismo_lint: %s: %s\n", finding.file.c_str(),
                     finding.message.c_str());
        return 2;
      }
      std::fprintf(stderr, "%s\n",
                   bismo::lint::format_finding(finding).c_str());
    }
    total += findings.size();
    if (verbose) {
      std::printf("bismo_lint: %s: %zu finding(s)\n", root.c_str(),
                  findings.size());
    }
  }
  if (total != 0) {
    std::fprintf(stderr, "bismo_lint: %zu finding(s)\n", total);
    return 1;
  }
  if (verbose) std::printf("bismo_lint: clean\n");
  return 0;
}
